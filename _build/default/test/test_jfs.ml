(* JFS-specific tests: record-level journaling and the §5.3 "kitchen
   sink" policy with its documented inconsistencies. *)

open Iron_disk
module Fault = Iron_fault.Fault
module Fs = Iron_vfs.Fs
module Errno = Iron_vfs.Errno
module Klog = Iron_vfs.Klog

let check = Alcotest.check

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" (Errno.to_string e)

let brand = Iron_jfs.Jfs.brand

let fresh () =
  let d =
    Memdisk.create
      ~params:{ Memdisk.default_params with Memdisk.num_blocks = 2048; seed = 41 }
      ()
  in
  Memdisk.set_time_model d false;
  let inj = Fault.create (Memdisk.dev d) in
  let dev = Fault.dev inj in
  ok (Fs.mkfs brand dev);
  (d, inj, dev, ok (Fs.mount brand dev))

let mkfile (Fs.Boxed ((module F), t)) path content =
  let fd = ok (F.creat t path) in
  ignore (ok (F.write t fd ~off:0 (Bytes.of_string content)));
  ok (F.close t fd)

let blocks_labeled d label =
  let cls = Iron_jfs.Jfs.classify (Memdisk.peek d) in
  List.filter (fun b -> cls b = label) (List.init 2048 Fun.id)

(* --- record-level journal -------------------------------------------- *)

let test_record_journal_recovers_small_updates () =
  let _, _, dev, (Fs.Boxed ((module F), t) as fs) = fresh () in
  mkfile fs "/small-change" "tiny";
  let fd = ok (F.open_ t "/small-change" Fs.Rd) in
  ok (F.fsync t fd);
  (* crash *)
  let (Fs.Boxed ((module F2), t2)) = ok (Fs.mount brand dev) in
  let st = ok (F2.stat t2 "/small-change") in
  check Alcotest.int "size recovered" 4 st.Fs.st_size;
  let logs = Klog.entries (F2.klog t2) in
  check Alcotest.bool "record replay logged" true
    (List.exists
       (fun e ->
         let m = String.lowercase_ascii e.Klog.message in
         try String.length m > 8 && String.sub m 0 8 = "journal:" with _ -> false)
       logs)

let test_journal_records_are_compact () =
  (* A one-byte metadata change should log a record far smaller than a
     block — that is the point of record-level journaling. Measure the
     journal traffic for a chmod. *)
  let d, _, _, (Fs.Boxed ((module F), t) as fs) = fresh () in
  mkfile fs "/c" "c";
  ok (F.sync t);
  Memdisk.reset_stats d;
  ok (F.chmod t "/c" 0o700);
  let fd = ok (F.open_ t "/c" Fs.Rd) in
  ok (F.fsync t fd);
  let stats = Memdisk.stats d in
  (* chmod = a few bytes of inode diff; the whole commit fits in one
     journal block (+ jsuper is untouched until checkpoint). *)
  check Alcotest.bool "commit wrote at most 2 blocks" true (stats.Memdisk.writes <= 2)

let test_multiple_txns_one_journal_block () =
  let d, _, dev, (Fs.Boxed ((module F), t) as fs) = fresh () in
  mkfile fs "/a" "1";
  let fd = ok (F.open_ t "/a" Fs.Rd) in
  ok (F.fsync t fd);
  ok (F.chmod t "/a" 0o700);
  let fd2 = ok (F.open_ t "/a" Fs.Rd) in
  ok (F.fsync t fd2);
  (* crash: both transactions must replay in order *)
  let (Fs.Boxed ((module F2), t2)) = ok (Fs.mount brand dev) in
  let st = ok (F2.stat t2 "/a") in
  check Alcotest.int "later txn wins" 0o700 st.Fs.st_mode;
  ignore d

(* --- policy (§5.3) ---------------------------------------------------- *)

let test_alternate_super_used_on_read_failure () =
  let _, inj, dev, (Fs.Boxed ((module F), t)) = fresh () in
  ok (F.unmount t);
  ignore (Fault.arm inj (Fault.rule (Fault.Block 1) Fault.Fail_read));
  match Fs.mount brand dev with
  | Ok (Fs.Boxed ((module F2), t2)) ->
      let logs = Klog.entries (F2.klog t2) in
      check Alcotest.bool "alternate consulted" true
        (List.exists
           (fun e ->
             let m = String.lowercase_ascii e.Klog.message in
             let rec find i =
               i + 9 <= String.length m
               && (String.sub m i 9 = "alternate" || find (i + 1))
             in
             find 0)
           logs)
  | Error e -> Alcotest.failf "mount should survive via alternate, got %s"
                 (Errno.to_string e)

let test_corrupt_primary_super_not_recovered () =
  (* The inconsistency: a corrupt (not unreadable) primary is fatal even
     though a perfectly good copy sits right next to it. *)
  let d, _, dev, (Fs.Boxed ((module F), t)) = fresh () in
  ok (F.unmount t);
  let buf = Memdisk.peek d 1 in
  Iron_util.Codec.write_u32 buf 0 0xBAD;
  Memdisk.poke d 1 buf;
  match Fs.mount brand dev with
  | Ok _ -> Alcotest.fail "mount must fail despite the good secondary"
  | Error e -> check Alcotest.bool "sanity errno" true (e = Errno.EUCLEAN)

let test_aggr_secondary_never_used () =
  let _, inj, dev, (Fs.Boxed ((module F), t)) = fresh () in
  ok (F.unmount t);
  ignore (Fault.arm inj (Fault.rule (Fault.Block 3) Fault.Fail_read));
  match Fs.mount brand dev with
  | Ok _ -> Alcotest.fail "mount should fail: the secondary is never consulted"
  | Error e -> check Alcotest.bool "EIO" true (e = Errno.EIO)

let test_copies_are_spatially_adjacent () =
  (* The paper's criticism: JFS puts copies right next to the primaries,
     so one scratch takes out both. *)
  let _, inj, dev, (Fs.Boxed ((module F), t)) = fresh () in
  ok (F.unmount t);
  ignore (Fault.arm inj (Fault.rule (Fault.Range (1, 4)) Fault.Fail_read));
  match Fs.mount brand dev with
  | Ok _ -> Alcotest.fail "a 4-block scratch kills primary and secondary"
  | Error _ -> ()

let test_crash_on_bmap_read_failure () =
  let d, inj, dev, (Fs.Boxed ((module F), t) as fs) = fresh () in
  mkfile fs "/pre" "p";
  ok (F.unmount t);
  let (Fs.Boxed ((module F2), t2)) = ok (Fs.mount brand dev) in
  ignore (Fault.arm inj (Fault.rule (Fault.Block 7) Fault.Fail_read));
  (try
     (* creat allocates no data blocks; the first data write must read
        the block allocation map - and halt. *)
     let fd = ok (F2.creat t2 "/needs-alloc") in
     ignore (F2.write t2 fd ~off:0 (Bytes.of_string "boom"));
     Alcotest.fail "expected crash on block-map read failure"
   with Klog.Panic _ -> ());
  ignore d

let test_blank_page_on_corrupt_internal () =
  (* §5.3: an internal tree block that fails its sanity check yields a
     blank page, silently. *)
  let d, _, dev, (Fs.Boxed ((module F), t) as fs) = fresh () in
  let big = String.make (20 * 4096) 'j' in
  mkfile fs "/tree" big;
  ok (F.unmount t);
  (match blocks_labeled d "internal" with
  | [] -> Alcotest.fail "no internal blocks"
  | b :: _ ->
      let buf = Memdisk.peek d b in
      Bytes.set_uint16_le buf 0 999 (* entry count beyond cap *);
      Memdisk.poke d b buf);
  let (Fs.Boxed ((module F2), t2)) = ok (Fs.mount brand dev) in
  let fd = ok (F2.open_ t2 "/tree" Fs.Rd) in
  (match F2.read t2 fd ~off:(10 * 4096) ~len:4096 with
  | Ok data ->
      check Alcotest.bytes "blank page returned" (Bytes.make 4096 '\000') data
  | Error e -> Alcotest.failf "the bug returns Ok, got %s" (Errno.to_string e))

let test_dir_sanity_check () =
  let d, _, dev, (Fs.Boxed ((module F), t) as fs) = fresh () in
  mkfile fs "/indir" "x";
  ok (F.unmount t);
  (match blocks_labeled d "dir" with
  | [] -> Alcotest.fail "no dir blocks"
  | b :: _ ->
      let buf = Memdisk.peek d b in
      Bytes.set_uint16_le buf 0 9999;
      Memdisk.poke d b buf);
  let (Fs.Boxed ((module F2), t2)) = ok (Fs.mount brand dev) in
  match F2.stat t2 "/indir" with
  | Error Errno.EUCLEAN -> ()
  | Ok _ -> Alcotest.fail "corrupt dir must be detected"
  | Error e -> Alcotest.failf "expected EUCLEAN, got %s" (Errno.to_string e)

let test_generic_read_retry () =
  let d, inj, dev, (Fs.Boxed ((module F), t) as fs) = fresh () in
  mkfile fs "/rr" "retry me";
  ok (F.unmount t);
  let (Fs.Boxed ((module F2), t2)) = ok (Fs.mount brand dev) in
  Fault.clear_trace inj;
  (match blocks_labeled d "inode" with
  | b :: _ -> ignore (Fault.arm inj (Fault.rule (Fault.Block b) Fault.Fail_read))
  | [] -> Alcotest.fail "no inode blocks");
  (match F2.stat t2 "/rr" with
  | Error Errno.EIO -> ()
  | Ok _ -> Alcotest.fail "expected EIO"
  | Error e -> Alcotest.failf "expected EIO, got %s" (Errno.to_string e));
  (* Exactly one retry: two failed reads of the same block back to back. *)
  let failed_reads =
    List.filter
      (fun (e : Fault.event) ->
        e.Fault.dir = Fault.Read
        && match e.Fault.outcome with Fault.Io_error _ -> true | _ -> false)
      (Fault.trace inj)
  in
  check Alcotest.int "read attempted twice" 2 (List.length failed_reads)

let test_jsuper_write_failure_crashes () =
  let _, inj, _, (Fs.Boxed ((module F), t) as fs) = fresh () in
  mkfile fs "/x" "x";
  ignore (Fault.arm inj (Fault.rule (Fault.Block 9) Fault.Fail_write));
  (try
     ignore (F.sync t) (* checkpoint writes the journal superblock *);
     Alcotest.fail "expected crash on journal superblock write failure"
   with Klog.Panic _ -> ())

let test_data_write_failure_ignored () =
  let d, inj, _, (Fs.Boxed ((module F), t) as fs) = fresh () in
  mkfile fs "/seed" "s";
  ok (F.sync t);
  (* Fail all writes beyond the metadata area. *)
  ignore (Fault.arm inj (Fault.rule (Fault.Range (80, 2047)) Fault.Fail_write));
  let fd = ok (F.creat t "/black-hole") in
  (match F.write t fd ~off:0 (Bytes.of_string "gone") with
  | Ok 4 -> ()
  | Ok n -> Alcotest.failf "odd length %d" n
  | Error e -> Alcotest.failf "data write errors are ignored, got %s" (Errno.to_string e));
  ok (F.close t fd);
  ignore d

let suites =
  [
    ( "jfs.journal",
      [
        Alcotest.test_case "record replay after crash" `Quick
          test_record_journal_recovers_small_updates;
        Alcotest.test_case "records are compact" `Quick test_journal_records_are_compact;
        Alcotest.test_case "multiple txns replay in order" `Quick
          test_multiple_txns_one_journal_block;
      ] );
    ( "jfs.policy",
      [
        Alcotest.test_case "alternate super on read failure" `Quick
          test_alternate_super_used_on_read_failure;
        Alcotest.test_case "corrupt primary not recovered" `Quick
          test_corrupt_primary_super_not_recovered;
        Alcotest.test_case "aggregate secondary never used" `Quick
          test_aggr_secondary_never_used;
        Alcotest.test_case "copies spatially adjacent" `Quick
          test_copies_are_spatially_adjacent;
        Alcotest.test_case "crash on bmap read failure" `Quick
          test_crash_on_bmap_read_failure;
        Alcotest.test_case "blank page on corrupt internal" `Quick
          test_blank_page_on_corrupt_internal;
        Alcotest.test_case "dir sanity check" `Quick test_dir_sanity_check;
        Alcotest.test_case "generic single read retry" `Quick test_generic_read_retry;
        Alcotest.test_case "jsuper write failure crashes" `Quick
          test_jsuper_write_failure_crashes;
        Alcotest.test_case "data write failure ignored" `Quick
          test_data_write_failure_ignored;
      ] );
  ]
