(* Reproduction fidelity: the paper's qualitative claims about each
   file system's failure policy (§5), pinned as assertions over the
   fingerprinting engine's output. If a model or the inference drifts,
   these fail with the exact cell that moved.

   Each expectation names (fs, fault, block type, workload column) and
   the detection/recovery techniques that must (or must not) appear. *)

module Driver = Iron_core.Driver
module T = Iron_core.Taxonomy
module W = Iron_core.Workload

let reports = Hashtbl.create 4

(* One full campaign per FS, shared across the expectations. *)
let report brand =
  let name = Iron_vfs.Fs.brand_name brand in
  match Hashtbl.find_opt reports name with
  | Some r -> r
  | None ->
      let r = Driver.fingerprint brand in
      Hashtbl.replace reports name r;
      r

type expect = {
  fs : Iron_vfs.Fs.brand;
  fault : T.fault_kind;
  row : string;
  col : char;
  claim : string; (* the paper's words, abbreviated *)
  must_detect : T.detection list;
  must_recover : T.recovery list;
  must_not_recover : T.recovery list;
}

let e ?(must_detect = []) ?(must_recover = []) ?(must_not_recover = []) fs fault
    row col claim =
  { fs; fault; row; col; claim; must_detect; must_recover; must_not_recover }

let ext3 = Iron_ext3.Ext3.std
let reiser = Iron_reiserfs.Reiserfs.brand
let jfs = Iron_jfs.Jfs.brand
let ntfs = Iron_ntfs.Ntfs.brand
let ixt3 = Iron_ext3.Ext3.ixt3

let expectations =
  [
    (* --- ext3 (§5.1) --- *)
    e ext3 T.Read_failure "inode" 'b'
      "ext3 primarily uses error codes to detect read failures"
      ~must_detect:[ T.DErrorCode ] ~must_recover:[ T.RPropagate ];
    e ext3 T.Read_failure "bitmap" 'g'
      "for read failures ext3 often aborts the journal (read-only remount)"
      ~must_recover:[ T.RStop ];
    e ext3 T.Write_failure "inode" 'g'
      "when a write fails ext3 does not record the error code"
      ~must_detect:[ T.DZero ] ~must_recover:[ T.RZero ];
    e ext3 T.Write_failure "j-commit" 'q'
      "ext3 still writes the rest of the transaction including the commit"
      ~must_detect:[ T.DZero ];
    e ext3 T.Read_failure "dir" 'f'
      "ext3 retries only on its (prefetching) directory read path"
      ~must_recover:[ T.RRetry ];
    e ext3 T.Corruption "super" 'p'
      "ext3 explicitly type-checks the superblock"
      ~must_detect:[ T.DSanity ] ~must_recover:[ T.RStop ];
    e ext3 T.Corruption "inode" 'o'
      "unlink does not check links_count; a corrupted value crashes"
      ~must_recover:[ T.RStop ];
    e ext3 T.Corruption "data" 'd'
      "no checks for user data: corruption is returned to the user"
      ~must_detect:[ T.DZero ] ~must_recover:[ T.RGuess ];
    (* --- ReiserFS (§5.2) --- *)
    e reiser T.Write_failure "j-desc" 'g'
      "ReiserFS panics on virtually any write failure"
      ~must_recover:[ T.RStop ];
    e reiser T.Write_failure "bitmap" 'g'
      "checkpoint write failures panic too" ~must_recover:[ T.RStop ];
    e reiser T.Write_failure "data" 'l'
      "BUT a failed ordered data write is not handled at all"
      ~must_detect:[ T.DZero ] ~must_recover:[ T.RZero ];
    e reiser T.Corruption "root" 'a'
      "node sanity-check failures panic instead of returning an error"
      ~must_detect:[ T.DSanity ] ~must_recover:[ T.RStop ];
    e reiser T.Corruption "super" 'p'
      "the super block has a magic number which is checked"
      ~must_detect:[ T.DSanity ];
    e reiser T.Read_failure "data" 'd'
      "when a data block read fails ReiserFS retries once, then propagates"
      ~must_recover:[ T.RRetry; T.RPropagate ];
    e reiser T.Corruption "j-data" 's'
      "no checking of journal data: replaying corruption is silent"
      ~must_detect:[ T.DZero ];
    (* --- JFS (§5.3) --- *)
    e jfs T.Read_failure "inode" 'b'
      "generic code retries every failed metadata read a single time"
      ~must_recover:[ T.RRetry; T.RPropagate ];
    e jfs T.Read_failure "super" 'p'
      "on primary superblock read failure JFS uses the alternate copy"
      ~must_recover:[ T.RRedundancy ];
    e jfs T.Corruption "super" 'p'
      "but a corrupt primary fails the mount: the copy is not consulted"
      ~must_recover:[ T.RStop ] ~must_not_recover:[ T.RRedundancy ];
    e jfs T.Read_failure "bmap" 'g'
      "explicit crashes when a block allocation map read fails"
      ~must_recover:[ T.RStop ];
    e jfs T.Write_failure "inode" 'g'
      "most write errors are ignored" ~must_detect:[ T.DZero ]
      ~must_recover:[ T.RZero ];
    e jfs T.Write_failure "j-super" 'q'
      "except journal superblock writes, which crash the system"
      ~must_recover:[ T.RStop ];
    e jfs T.Corruption "internal" 'd'
      "a blank page is sometimes returned to the user"
      ~must_recover:[ T.RGuess ];
    (* --- NTFS (§5.4) --- *)
    e ntfs T.Read_failure "mft" 'b'
      "NTFS aggressively retries failed reads"
      ~must_recover:[ T.RRetry; T.RPropagate ];
    e ntfs T.Write_failure "data" 'l'
      "a failed data write is recorded but the error is not used"
      ~must_recover:[ T.RRetry ] ~must_not_recover:[ T.RPropagate ];
    e ntfs T.Corruption "dir" 'f'
      "strong sanity checking on metadata" ~must_detect:[ T.DSanity ];
    (* --- ixt3 (§6) --- *)
    e ixt3 T.Read_failure "inode" 'b'
      "metadata read failures recover from the replica"
      ~must_recover:[ T.RRedundancy ];
    e ixt3 T.Read_failure "dir" 'f'
      "including dynamically allocated directory blocks"
      ~must_recover:[ T.RRedundancy ];
    e ixt3 T.Read_failure "data" 'd'
      "data read failures reconstruct from the parity group"
      ~must_recover:[ T.RRedundancy ];
    e ixt3 T.Corruption "inode" 'b'
      "checksums detect corruption end to end"
      ~must_detect:[ T.DRedundancy ] ~must_recover:[ T.RRedundancy ];
    e ixt3 T.Corruption "data" 'd'
      "data corruption is detected and repaired, never returned"
      ~must_detect:[ T.DRedundancy ] ~must_not_recover:[ T.RGuess ];
    e ixt3 T.Write_failure "inode" 'g'
      "write failures are detected; the journal aborts (read-only)"
      ~must_detect:[ T.DErrorCode ] ~must_recover:[ T.RStop ];
    e ixt3 T.Corruption "j-data" 's'
      "transactional checksums catch corrupt journal payloads"
      ~must_detect:[ T.DRedundancy ];
  ]

let check_one exp () =
  let r = report exp.fs in
  let m = List.find (fun m -> m.Driver.fault = exp.fault) r.Driver.matrices in
  let c = m.Driver.cell exp.row exp.col in
  if c.Driver.fired = 0 then
    Alcotest.failf "cell (%s,%c) never fired — cannot check: %s" exp.row exp.col
      exp.claim;
  let d_names = List.map T.detection_name c.Driver.detection in
  let r_names = List.map T.recovery_name c.Driver.recovery in
  let ctx () =
    Printf.sprintf "[detected: %s; recovered: %s]"
      (String.concat "," d_names) (String.concat "," r_names)
  in
  List.iter
    (fun d ->
      if not (List.mem d c.Driver.detection) then
        Alcotest.failf "missing %s %s — %s" (T.detection_name d) (ctx ()) exp.claim)
    exp.must_detect;
  List.iter
    (fun rc ->
      if not (List.mem rc c.Driver.recovery) then
        Alcotest.failf "missing %s %s — %s" (T.recovery_name rc) (ctx ()) exp.claim)
    exp.must_recover;
  List.iter
    (fun rc ->
      if List.mem rc c.Driver.recovery then
        Alcotest.failf "unexpected %s %s — %s" (T.recovery_name rc) (ctx ()) exp.claim)
    exp.must_not_recover

let suites =
  [
    ( "fidelity",
      List.map
        (fun exp ->
          let name =
            Printf.sprintf "%s/%s/%s@%c" (Iron_vfs.Fs.brand_name exp.fs)
              (match exp.fault with
              | T.Read_failure -> "read"
              | T.Write_failure -> "write"
              | T.Corruption -> "corrupt")
              exp.row exp.col
          in
          Alcotest.test_case name `Slow (check_one exp))
        expectations );
  ]
