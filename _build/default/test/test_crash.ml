(* Power-cut (torn-write) crash testing across the journaling file
   systems: a [Fault.After n] whole-disk write failure models power
   loss n writes into a run. After the "cut", the image is remounted
   and checked:

   - the volume must mount (recovery may replay or discard);
   - files committed (fsync'd) before the cut must be fully intact;
   - nothing may panic during recovery;
   - for ext3, fsck must find no errors (leak warnings allowed: an
     interrupted transaction may strand preallocated blocks).

   The cut point sweeps the interesting range, so every prefix of the
   commit sequence gets torn at least once per run — the classic
   journaling torture test. *)

open Iron_disk
module Fault = Iron_fault.Fault
module Fs = Iron_vfs.Fs
module Errno = Iron_vfs.Errno
module Klog = Iron_vfs.Klog

let check = Alcotest.check
let qtest t =
  (* Deterministic: the whole suite replays bit-for-bit. *)
  QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 3146 |]) t

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" (Errno.to_string e)

let content i = Printf.sprintf "payload-%d-%s" i (String.make (100 + (i * 37 mod 900)) 'c')

(* One crash trial: commit [committed] files, then start more work and
   cut power after [cut] further writes. Returns (mounted?, losses). *)
let trial brand ~committed ~cut =
  let d =
    Memdisk.create
      ~params:{ Memdisk.default_params with Memdisk.num_blocks = 2048; seed = 81 }
      ()
  in
  Memdisk.set_time_model d false;
  let inj = Fault.create (Memdisk.dev d) in
  let dev = Fault.dev inj in
  ok (Fs.mkfs brand dev);
  let (Fs.Boxed ((module F), t)) = ok (Fs.mount brand dev) in
  (* Phase 1: durable files. *)
  for i = 0 to committed - 1 do
    let fd = ok (F.creat t (Printf.sprintf "/done%d" i)) in
    ignore (ok (F.write t fd ~off:0 (Bytes.of_string (content i))));
    ok (F.fsync t fd);
    ok (F.close t fd)
  done;
  (* Phase 2: racing work, with the power cut [cut] writes in. *)
  ignore
    (Fault.arm inj
       (Fault.rule ~persistence:(Fault.After cut) Fault.Whole_disk Fault.Fail_write));
  (try
     for i = 0 to 5 do
       match F.creat t (Printf.sprintf "/racing%d" i) with
       | Ok fd ->
           (match F.write t fd ~off:0 (Bytes.of_string (content (100 + i))) with
           | Ok _ | Error _ -> ());
           (match F.fsync t fd with Ok () | (exception Klog.Panic _) -> () | Error _ -> ());
           ignore (F.close t fd)
       | Error _ -> ()
     done
   with Klog.Panic _ -> () (* ReiserFS reacts to the dying disk by panicking *));
  (* The machine is gone; the disk is whatever it is. Clear faults
     (power is back) and remount. *)
  Fault.disarm_all inj;
  match Fs.mount brand dev with
  | Error e -> (Some (Errno.to_string e), 0)
  | Ok (Fs.Boxed ((module F2), t2)) ->
      let losses = ref 0 in
      for i = 0 to committed - 1 do
        let path = Printf.sprintf "/done%d" i in
        let expect = content i in
        match F2.open_ t2 path Fs.Rd with
        | Error _ -> incr losses
        | Ok fd -> (
            match F2.read t2 fd ~off:0 ~len:(String.length expect) with
            | Ok data when Bytes.to_string data = expect -> ()
            | Ok _ | Error _ -> incr losses)
      done;
      (None, !losses)

let crash_suite_for name brand =
  let test_committed_survive_cut () =
    (* Sweep cut points: early cuts tear the journal mid-commit, later
       ones tear checkpoints. *)
    List.iter
      (fun cut ->
        match trial brand ~committed:4 ~cut with
        | Some err, _ ->
            Alcotest.failf "%s: volume unmountable after cut@%d (%s)" name cut err
        | None, losses ->
            if losses > 0 then
              Alcotest.failf "%s: lost %d committed files after cut@%d" name losses cut)
      [ 0; 1; 2; 3; 5; 8; 13; 21; 34 ]
  in
  Alcotest.test_case (name ^ ": committed data survives any cut point") `Slow
    test_committed_survive_cut

let prop_random_cut_points brand name =
  QCheck.Test.make ~name:(name ^ ": random power-cut points") ~count:25
    QCheck.(int_bound 60)
    (fun cut ->
      match trial brand ~committed:3 ~cut with
      | None, 0 -> true
      | None, _ -> false
      | Some _, _ -> false)

(* ext3 only: fsck after the crash+recovery finds no errors. *)
let test_ext3_fsck_clean_after_crash () =
  List.iter
    (fun cut ->
      let d =
        Memdisk.create
          ~params:{ Memdisk.default_params with Memdisk.num_blocks = 2048; seed = 83 }
          ()
      in
      Memdisk.set_time_model d false;
      let inj = Fault.create (Memdisk.dev d) in
      let dev = Fault.dev inj in
      let brand = Iron_ext3.Ext3.std in
      ok (Fs.mkfs brand dev);
      let (Fs.Boxed ((module F), t)) = ok (Fs.mount brand dev) in
      let fd = ok (F.creat t "/base") in
      ignore (ok (F.write t fd ~off:0 (Bytes.make 5000 'b')));
      ok (F.fsync t fd);
      ignore
        (Fault.arm inj
           (Fault.rule ~persistence:(Fault.After cut) Fault.Whole_disk
              Fault.Fail_write));
      (try
         for i = 0 to 3 do
           match F.creat t (Printf.sprintf "/r%d" i) with
           | Ok fd ->
               ignore (F.write t fd ~off:0 (Bytes.make 3000 'r'));
               (match F.sync t with Ok () | Error _ -> ())
           | Error _ -> ()
         done
       with Klog.Panic _ -> ());
      Fault.disarm_all inj;
      (* Recovery... *)
      let (Fs.Boxed ((module F2), t2)) = ok (Fs.mount brand dev) in
      ok (F2.unmount t2);
      (* ...then consistency: no errors (leaked blocks are warnings). *)
      let r = ok (Iron_ext3.Fsck.run dev) in
      if not r.Iron_ext3.Fsck.clean then begin
        List.iter
          (fun f -> Printf.eprintf "  %s\n" f.Iron_ext3.Fsck.message)
          r.Iron_ext3.Fsck.findings;
        Alcotest.failf "fsck found errors after crash at cut=%d" cut
      end)
    [ 0; 2; 4; 7; 11; 18; 30 ]

let suites =
  [
    ( "crash.powercut",
      [
        crash_suite_for "ext3" Iron_ext3.Ext3.std;
        crash_suite_for "ixt3" Iron_ext3.Ext3.ixt3;
        crash_suite_for "jfs" Iron_jfs.Jfs.brand;
        crash_suite_for "reiserfs" Iron_reiserfs.Reiserfs.brand;
        qtest (prop_random_cut_points Iron_ext3.Ext3.std "ext3");
        qtest (prop_random_cut_points Iron_reiserfs.Reiserfs.brand "reiserfs");
        qtest (prop_random_cut_points Iron_ext3.Ext3.ixt3 "ixt3");
        qtest (prop_random_cut_points Iron_jfs.Jfs.brand "jfs");
        Alcotest.test_case "ext3: fsck clean after crash" `Slow
          test_ext3_fsck_clean_after_crash;
      ] );
  ]
