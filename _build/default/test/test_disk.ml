(* Tests for the simulated disk and block cache. *)

open Iron_disk

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let small_params =
  { Memdisk.default_params with Memdisk.num_blocks = 64; seed = 1 }

let make () =
  let d = Memdisk.create ~params:small_params () in
  (d, Memdisk.dev d)

let block dev c = Bytes.make dev.Dev.block_size c

let test_read_write_roundtrip () =
  let _, dev = make () in
  let data = block dev 'x' in
  Dev.write_exn dev 5 data;
  check Alcotest.bytes "roundtrip" data (Dev.read_exn dev 5)

let test_fresh_blocks_zero () =
  let _, dev = make () in
  check Alcotest.bytes "zeroed" (block dev '\000') (Dev.read_exn dev 0)

let test_out_of_range () =
  let _, dev = make () in
  (match dev.Dev.read 64 with
  | Error Dev.Enxio -> ()
  | Ok _ | Error Dev.Eio -> Alcotest.fail "expected ENXIO");
  match dev.Dev.write (-1) (block dev 'a') with
  | Error Dev.Enxio -> ()
  | Ok _ | Error Dev.Eio -> Alcotest.fail "expected ENXIO"

let test_wrong_size_write () =
  let _, dev = make () in
  match dev.Dev.write 0 (Bytes.create 7) with
  | Error Dev.Eio -> ()
  | Ok _ | Error Dev.Enxio -> Alcotest.fail "expected EIO"

let test_time_advances () =
  let _, dev = make () in
  let t0 = dev.Dev.now () in
  Dev.write_exn dev 10 (block dev 'a');
  Dev.write_exn dev 50 (block dev 'b');
  check Alcotest.bool "time advanced" true (dev.Dev.now () > t0)

let test_sequential_cheaper_than_random () =
  let mk seed =
    Memdisk.create ~params:{ small_params with Memdisk.seed } ()
  in
  let seq = mk 2 and rnd = mk 2 in
  let sdev = Memdisk.dev seq and rdev = Memdisk.dev rnd in
  for i = 0 to 30 do
    Dev.write_exn sdev i (block sdev 'a')
  done;
  (* Same number of writes, but scattered. *)
  List.iteri
    (fun _ b -> Dev.write_exn rdev b (block rdev 'a'))
    [ 0; 40; 3; 55; 9; 33; 1; 60; 17; 44; 5; 50; 11; 38; 2; 58; 21;
      47; 7; 53; 13; 41; 4; 63; 19; 36; 6; 56; 15; 43; 8 ];
  check Alcotest.bool "sequential faster" true
    ((Memdisk.stats seq).Memdisk.elapsed_ms < (Memdisk.stats rnd).Memdisk.elapsed_ms)

let test_sync_counts_and_charges () =
  let d, dev = make () in
  Dev.write_exn dev 0 (block dev 'a');
  let before = (Memdisk.stats d).Memdisk.elapsed_ms in
  ignore (dev.Dev.sync ());
  let after = (Memdisk.stats d).Memdisk.elapsed_ms in
  check Alcotest.bool "sync with dirty data costs time" true (after > before);
  (* A second sync with nothing dirty is free. *)
  ignore (dev.Dev.sync ());
  check Alcotest.(float 0.0001) "idempotent sync" after
    (Memdisk.stats d).Memdisk.elapsed_ms

let test_snapshot_restore () =
  let d, dev = make () in
  Dev.write_exn dev 3 (block dev 'a');
  let snap = Memdisk.snapshot d in
  Dev.write_exn dev 3 (block dev 'b');
  Dev.write_exn dev 4 (block dev 'c');
  Memdisk.restore d snap;
  check Alcotest.int "stats reset" 0 (Memdisk.stats d).Memdisk.reads;
  check Alcotest.bytes "restored block 3" (block dev 'a') (Dev.read_exn dev 3);
  check Alcotest.bytes "restored block 4" (block dev '\000') (Dev.read_exn dev 4)

let test_time_model_toggle () =
  let d, dev = make () in
  Memdisk.set_time_model d false;
  Dev.write_exn dev 10 (block dev 'a');
  Dev.write_exn dev 55 (block dev 'b');
  check Alcotest.(float 0.0) "no time charged" 0.0 (dev.Dev.now ())

let prop_disk_holds_data =
  QCheck.Test.make ~name:"disk stores independent blocks" ~count:50
    QCheck.(list_of_size (QCheck.Gen.int_range 1 20) (int_bound 63))
    (fun blocks ->
      let _, dev = make () in
      List.iteri
        (fun i b -> Dev.write_exn dev b (block dev (Char.chr (65 + (i mod 26)))))
        blocks;
      (* The final write to each block wins. *)
      let final = Hashtbl.create 16 in
      List.iteri (fun i b -> Hashtbl.replace final b (Char.chr (65 + (i mod 26)))) blocks;
      Hashtbl.fold
        (fun b c acc -> acc && Bytes.equal (Dev.read_exn dev b) (block dev c))
        final true)

(* --- Bcache ---------------------------------------------------------- *)

let test_bcache_hit () =
  let d, dev = make () in
  let c = Bcache.create ~capacity:8 dev in
  Dev.write_exn dev 1 (block dev 'z');
  Memdisk.reset_stats d;
  (match Bcache.read c 1 with Ok _ -> () | Error _ -> Alcotest.fail "read");
  (match Bcache.read c 1 with Ok _ -> () | Error _ -> Alcotest.fail "read");
  check Alcotest.int "only one device read" 1 (Memdisk.stats d).Memdisk.reads;
  check Alcotest.int "one hit" 1 (Bcache.hits c)

let test_bcache_write_through () =
  let _, dev = make () in
  let c = Bcache.create dev in
  (match Bcache.write c 2 (block dev 'q') with Ok () -> () | Error _ -> assert false);
  check Alcotest.bytes "reached device" (block dev 'q') (Dev.read_exn dev 2)

let test_bcache_eviction () =
  let d, dev = make () in
  let c = Bcache.create ~capacity:4 dev in
  for b = 0 to 7 do
    ignore (Bcache.read c b)
  done;
  Memdisk.reset_stats d;
  ignore (Bcache.read c 0);
  check Alcotest.int "evicted block re-read from device" 1
    (Memdisk.stats d).Memdisk.reads

let test_bcache_failed_write_keeps_new_data () =
  (* Page-cache semantics: a failed device write leaves memory new and
     disk stale (the behaviour behind ext3's silent write-error loss). *)
  let d, dev = make () in
  Dev.write_exn dev 3 (block dev 'o');
  let inj = Iron_fault.Fault.create dev in
  let fdev = Iron_fault.Fault.dev inj in
  let c = Bcache.create fdev in
  ignore (Iron_fault.Fault.arm inj
            (Iron_fault.Fault.rule (Iron_fault.Fault.Block 3) Iron_fault.Fault.Fail_write));
  (match Bcache.write c 3 (block dev 'n') with
  | Error Dev.Eio -> ()
  | Ok () | Error Dev.Enxio -> Alcotest.fail "expected injected EIO");
  (match Bcache.read c 3 with
  | Ok data -> check Alcotest.bytes "cache has new data" (block dev 'n') data
  | Error _ -> Alcotest.fail "cache read");
  check Alcotest.bytes "disk has old data" (block dev 'o') (Memdisk.peek d 3)

let test_bcache_invalidate () =
  let d, dev = make () in
  let c = Bcache.create dev in
  ignore (Bcache.read c 5);
  Bcache.invalidate c 5;
  Memdisk.reset_stats d;
  ignore (Bcache.read c 5);
  check Alcotest.int "device read after invalidate" 1 (Memdisk.stats d).Memdisk.reads

let suites =
  [
    ( "disk.memdisk",
      [
        Alcotest.test_case "roundtrip" `Quick test_read_write_roundtrip;
        Alcotest.test_case "fresh blocks zero" `Quick test_fresh_blocks_zero;
        Alcotest.test_case "out of range" `Quick test_out_of_range;
        Alcotest.test_case "wrong-size write" `Quick test_wrong_size_write;
        Alcotest.test_case "time advances" `Quick test_time_advances;
        Alcotest.test_case "sequential cheaper" `Quick test_sequential_cheaper_than_random;
        Alcotest.test_case "sync charges rotation" `Quick test_sync_counts_and_charges;
        Alcotest.test_case "snapshot/restore" `Quick test_snapshot_restore;
        Alcotest.test_case "time model toggle" `Quick test_time_model_toggle;
        qtest prop_disk_holds_data;
      ] );
    ( "disk.bcache",
      [
        Alcotest.test_case "cache hit" `Quick test_bcache_hit;
        Alcotest.test_case "write-through" `Quick test_bcache_write_through;
        Alcotest.test_case "eviction" `Quick test_bcache_eviction;
        Alcotest.test_case "failed write keeps new data" `Quick
          test_bcache_failed_write_keeps_new_data;
        Alcotest.test_case "invalidate" `Quick test_bcache_invalidate;
      ] );
  ]
