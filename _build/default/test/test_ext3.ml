(* Integration and unit tests for the ext3 model (stock profile). *)

open Iron_disk
module Fault = Iron_fault.Fault
module Fs = Iron_vfs.Fs
module Errno = Iron_vfs.Errno
module Klog = Iron_vfs.Klog
module Ext3 = Iron_ext3.Ext3
module Layout = Iron_ext3.Layout
module Inode = Iron_ext3.Inode
module Dirent = Iron_ext3.Dirent

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let errno = Alcotest.testable Errno.pp Errno.equal

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" (Errno.to_string e)

let expect_err expected = function
  | Ok _ -> Alcotest.failf "expected %s, got Ok" (Errno.to_string expected)
  | Error e -> check errno "errno" expected e

let small_disk () =
  Memdisk.create
    ~params:{ Memdisk.default_params with Memdisk.num_blocks = 2048; seed = 5 }
    ()

(* Mount a fresh stock-ext3 volume; returns (memdisk, injector, boxed fs). *)
let fresh ?(brand = Ext3.std) () =
  let d = small_disk () in
  Memdisk.set_time_model d false;
  let inj = Fault.create (Memdisk.dev d) in
  let dev = Fault.dev inj in
  ok (Fs.mkfs brand dev);
  let fs = ok (Fs.mount brand dev) in
  (d, inj, fs)

(* Convenience wrappers over the boxed instance. *)
let mkfile (Fs.Boxed ((module F), t)) path content =
  let fd = ok (F.creat t path) in
  let n = ok (F.write t fd ~off:0 (Bytes.of_string content)) in
  check Alcotest.int "write length" (String.length content) n;
  ok (F.close t fd)

let readfile (Fs.Boxed ((module F), t)) path =
  let fd = ok (F.open_ t path Fs.Rd) in
  let st = ok (F.stat t path) in
  let data = ok (F.read t fd ~off:0 ~len:st.Fs.st_size) in
  ok (F.close t fd);
  Bytes.to_string data

(* --- basic operation tests ------------------------------------------ *)

let test_mkfs_mount_unmount () =
  let _, _, (Fs.Boxed ((module F), t) as _fs) = fresh () in
  let st = ok (F.statfs t) in
  check Alcotest.bool "free blocks positive" true (st.Fs.f_bfree > 0);
  check Alcotest.bool "free inodes positive" true (st.Fs.f_ffree > 0);
  ok (F.unmount t)

let test_create_and_read_back () =
  let _, _, fs = fresh () in
  mkfile fs "/hello.txt" "hello, iron world";
  check Alcotest.string "content" "hello, iron world" (readfile fs "/hello.txt")

let test_stat_fields () =
  let _, _, (Fs.Boxed ((module F), t) as fs) = fresh () in
  mkfile fs "/f" "12345";
  let st = ok (F.stat t "/f") in
  check Alcotest.int "size" 5 st.Fs.st_size;
  check Alcotest.int "links" 1 st.Fs.st_links;
  check Alcotest.bool "regular" true (st.Fs.st_kind = Fs.Regular)

let test_mkdir_hierarchy () =
  let _, _, (Fs.Boxed ((module F), t) as fs) = fresh () in
  ok (F.mkdir t "/a");
  ok (F.mkdir t "/a/b");
  ok (F.mkdir t "/a/b/c");
  mkfile fs "/a/b/c/deep.txt" "deep";
  check Alcotest.string "deep read" "deep" (readfile fs "/a/b/c/deep.txt");
  let st = ok (F.stat t "/a") in
  check Alcotest.int "dir links (., .., b)" 3 st.Fs.st_links

let test_getdirentries () =
  let _, _, (Fs.Boxed ((module F), t) as fs) = fresh () in
  ok (F.mkdir t "/d");
  mkfile fs "/d/one" "1";
  mkfile fs "/d/two" "2";
  let names = List.map fst (ok (F.getdirentries t "/d")) |> List.sort compare in
  check Alcotest.(list string) "entries" [ "."; ".."; "one"; "two" ] names

let test_unlink () =
  let _, _, (Fs.Boxed ((module F), t) as fs) = fresh () in
  mkfile fs "/gone" "x";
  let st0 = ok (F.statfs t) in
  ok (F.unlink t "/gone");
  expect_err Errno.ENOENT (F.stat t "/gone");
  let st1 = ok (F.statfs t) in
  check Alcotest.bool "blocks returned" true (st1.Fs.f_bfree >= st0.Fs.f_bfree);
  check Alcotest.int "inode returned" (st0.Fs.f_ffree + 1) st1.Fs.f_ffree

let test_link_and_counts () =
  let _, _, (Fs.Boxed ((module F), t) as fs) = fresh () in
  mkfile fs "/orig" "shared";
  ok (F.link t "/orig" "/alias");
  check Alcotest.int "links" 2 (ok (F.stat t "/orig")).Fs.st_links;
  check Alcotest.string "alias reads" "shared" (readfile fs "/alias");
  ok (F.unlink t "/orig");
  check Alcotest.string "alias survives" "shared" (readfile fs "/alias");
  check Alcotest.int "links back to 1" 1 (ok (F.stat t "/alias")).Fs.st_links

let test_rename () =
  let _, _, (Fs.Boxed ((module F), t) as fs) = fresh () in
  ok (F.mkdir t "/src");
  ok (F.mkdir t "/dst");
  mkfile fs "/src/f" "payload";
  ok (F.rename t "/src/f" "/dst/g");
  expect_err Errno.ENOENT (F.stat t "/src/f");
  check Alcotest.string "moved content" "payload" (readfile fs "/dst/g")

let test_rename_replaces_target () =
  let _, _, (Fs.Boxed ((module F), t) as fs) = fresh () in
  mkfile fs "/a" "aaa";
  mkfile fs "/b" "bbb";
  ok (F.rename t "/a" "/b");
  check Alcotest.string "target replaced" "aaa" (readfile fs "/b");
  expect_err Errno.ENOENT (F.stat t "/a")

let test_rmdir_nonempty () =
  let _, _, (Fs.Boxed ((module F), t) as fs) = fresh () in
  ok (F.mkdir t "/full");
  mkfile fs "/full/x" "x";
  expect_err Errno.ENOTEMPTY (F.rmdir t "/full");
  ok (F.unlink t "/full/x");
  ok (F.rmdir t "/full");
  expect_err Errno.ENOENT (F.stat t "/full")

let test_symlink_readlink_follow () =
  let _, _, (Fs.Boxed ((module F), t) as fs) = fresh () in
  mkfile fs "/target" "pointed-at";
  ok (F.symlink t "/target" "/lnk");
  check Alcotest.string "readlink" "/target" (ok (F.readlink t "/lnk"));
  check Alcotest.string "follow" "pointed-at" (readfile fs "/lnk");
  let st = ok (F.lstat t "/lnk") in
  check Alcotest.bool "lstat sees symlink" true (st.Fs.st_kind = Fs.Symlink)

let test_symlink_loop () =
  let _, _, (Fs.Boxed ((module F), t)) = fresh () in
  ok (F.symlink t "/l2" "/l1");
  ok (F.symlink t "/l1" "/l2");
  expect_err Errno.ELOOP (F.stat t "/l1")

let test_chdir_relative_paths () =
  let _, _, (Fs.Boxed ((module F), t) as fs) = fresh () in
  ok (F.mkdir t "/w");
  ok (F.chdir t "/w");
  mkfile fs "rel.txt" "relative";
  check Alcotest.string "via absolute" "relative" (readfile fs "/w/rel.txt")

let test_chmod_chown_utimes () =
  let _, _, (Fs.Boxed ((module F), t) as fs) = fresh () in
  mkfile fs "/meta" "m";
  ok (F.chmod t "/meta" 0o600);
  ok (F.chown t "/meta" 7 8);
  ok (F.utimes t "/meta" 100.0 200.0);
  let st = ok (F.stat t "/meta") in
  check Alcotest.int "mode" 0o600 st.Fs.st_mode;
  check Alcotest.int "uid" 7 st.Fs.st_uid;
  check Alcotest.int "gid" 8 st.Fs.st_gid;
  check Alcotest.(float 0.1) "atime" 100.0 st.Fs.st_atime;
  check Alcotest.(float 0.1) "mtime" 200.0 st.Fs.st_mtime

let test_truncate_shrinks_and_frees () =
  let _, _, (Fs.Boxed ((module F), t) as fs) = fresh () in
  let big = String.init 40000 (fun i -> Char.chr (i mod 251)) in
  mkfile fs "/big" big;
  let free0 = (ok (F.statfs t)).Fs.f_bfree in
  ok (F.truncate t "/big" 100);
  check Alcotest.int "size" 100 (ok (F.stat t "/big")).Fs.st_size;
  check Alcotest.string "prefix preserved" (String.sub big 0 100) (readfile fs "/big");
  check Alcotest.bool "blocks freed" true ((ok (F.statfs t)).Fs.f_bfree > free0)

let test_large_file_indirect_paths () =
  (* 4 direct + 16 ind + 256 dind blocks = exercises double indirection
     at ~1.1 MB with the scaled-down geometry. *)
  let _, _, (Fs.Boxed ((module F), t) as fs) = fresh () in
  let size = 300 * 4096 in
  let big = String.init size (fun i -> Char.chr ((i * 7) mod 253)) in
  let fd = ok (F.creat t "/huge") in
  let n = ok (F.write t fd ~off:0 (Bytes.of_string big)) in
  check Alcotest.int "wrote all" size n;
  ok (F.close t fd);
  ok (F.sync t);
  check Alcotest.string "content back" (String.sub big 123456 1000)
    (String.sub (readfile fs "/huge") 123456 1000)

let test_sparse_file_holes_read_zero () =
  let _, _, (Fs.Boxed ((module F), t)) = fresh () in
  let fd = ok (F.creat t "/sparse") in
  ignore (ok (F.write t fd ~off:(100 * 4096) (Bytes.of_string "end")));
  let data = ok (F.read t fd ~off:4096 ~len:10) in
  check Alcotest.bytes "hole reads zero" (Bytes.make 10 '\000') data;
  let tail = ok (F.read t fd ~off:(100 * 4096) ~len:3) in
  check Alcotest.string "tail" "end" (Bytes.to_string tail)

let test_partial_block_overwrite () =
  let _, _, (Fs.Boxed ((module F), t) as fs) = fresh () in
  mkfile fs "/part" (String.make 8192 'a');
  let fd = ok (F.open_ t "/part" Fs.Rdwr) in
  ignore (ok (F.write t fd ~off:4000 (Bytes.of_string "XYZ")));
  ok (F.close t fd);
  let s = readfile fs "/part" in
  check Alcotest.string "overwrite spans blocks" "aXYZa" (String.sub s 3999 5);
  check Alcotest.int "size unchanged" 8192 (String.length s)

let test_enospc () =
  let _, _, (Fs.Boxed ((module F), t)) = fresh () in
  let chunk = Bytes.make (64 * 4096) 'f' in
  let rec fill i =
    if i > 200 then Alcotest.fail "never hit ENOSPC"
    else
      match F.creat t (Printf.sprintf "/fill%d" i) with
      | Error Errno.ENOSPC -> ()
      | Error e -> Alcotest.failf "unexpected %s" (Errno.to_string e)
      | Ok fd -> (
          match F.write t fd ~off:0 chunk with
          | Ok _ ->
              ok (F.close t fd);
              fill (i + 1)
          | Error Errno.ENOSPC -> ()
          | Error e -> Alcotest.failf "unexpected %s" (Errno.to_string e))
  in
  fill 0

let test_errno_cases () =
  let _, _, (Fs.Boxed ((module F), t) as fs) = fresh () in
  expect_err Errno.ENOENT (F.stat t "/missing");
  mkfile fs "/file" "x";
  expect_err Errno.ENOTDIR (F.stat t "/file/sub");
  expect_err Errno.EEXIST (F.mkdir t "/file");
  expect_err Errno.EISDIR (F.unlink t "/");
  expect_err Errno.EBADF (F.read t 999 ~off:0 ~len:1);
  expect_err Errno.EINVAL (F.readlink t "/file")

(* --- journaling / crash recovery ------------------------------------ *)

let test_remount_preserves_data () =
  let d, inj, (Fs.Boxed ((module F), t) as fs) = fresh () in
  mkfile fs "/persist" "still here";
  ok (F.unmount t);
  let fs2 = ok (Fs.mount Ext3.std (Fault.dev inj)) in
  check Alcotest.string "after remount" "still here" (readfile fs2 "/persist");
  ignore d

let test_crash_after_sync_recovers_via_journal () =
  let d, inj, (Fs.Boxed ((module F), t) as fs) = fresh () in
  mkfile fs "/committed" "journal me";
  (* fsync commits the transaction to the journal without
     checkpointing, so the crash image needs replay at mount. *)
  let fd = ok (F.open_ t "/committed" Fs.Rd) in
  ok (F.fsync t fd);
  (* Crash: abandon the mounted instance without unmount/checkpoint. *)
  ignore t;
  let fs2 = ok (Fs.mount Ext3.std (Fault.dev inj)) in
  check Alcotest.string "replayed" "journal me" (readfile fs2 "/committed");
  let (Fs.Boxed ((module F2), t2)) = fs2 in
  let logs = Klog.entries (F2.klog t2) in
  check Alcotest.bool "recovery logged" true
    (List.exists (fun e -> e.Klog.level = Klog.Info) logs);
  ignore d

let test_crash_without_sync_loses_uncommitted () =
  let _, inj, (Fs.Boxed ((module F), t) as fs) = fresh () in
  mkfile fs "/sync-me" "A";
  let fd = ok (F.open_ t "/sync-me" Fs.Rd) in
  ok (F.fsync t fd);
  mkfile fs "/lost" "B";
  (* no sync: metadata only in the in-memory transaction *)
  ignore t;
  let (Fs.Boxed ((module F2), t2) as fs2) = ok (Fs.mount Ext3.std (Fault.dev inj)) in
  check Alcotest.string "committed survives" "A" (readfile fs2 "/sync-me");
  expect_err Errno.ENOENT (F2.stat t2 "/lost")

let test_recovery_idempotent () =
  let _, inj, (Fs.Boxed ((module F), t) as fs) = fresh () in
  mkfile fs "/twice" "idem";
  let fd = ok (F.open_ t "/twice" Fs.Rd) in
  ok (F.fsync t fd);
  ignore t;
  let (Fs.Boxed ((module Fa), ta)) = ok (Fs.mount Ext3.std (Fault.dev inj)) in
  ok (Fa.unmount ta);
  let fs3 = ok (Fs.mount Ext3.std (Fault.dev inj)) in
  check Alcotest.string "second replay harmless" "idem" (readfile fs3 "/twice")

(* --- stock-ext3 failure-policy behaviours --------------------------- *)

let test_read_failure_propagates () =
  let d, inj, (Fs.Boxed ((module F), t) as fs) = fresh () in
  mkfile fs "/victim" (String.make 5000 'v');
  ok (F.unmount t);
  (* Remount so reads actually reach the (faulty) device rather than
     the old instance's page cache. *)
  let (Fs.Boxed ((module F), t)) = ok (Fs.mount Ext3.std (Fault.dev inj)) in
  let lay = Iron_ext3.Ext3.layout_of_dev (Fault.dev inj) in
  let cls = Iron_ext3.Classifier.classify (Memdisk.peek d) in
  let data_blocks =
    List.filter (fun b -> cls b = "data")
      (List.init lay.Layout.num_blocks Fun.id)
  in
  check Alcotest.bool "found data blocks" true (data_blocks <> []);
  List.iter
    (fun b -> ignore (Fault.arm inj (Fault.rule (Fault.Block b) Fault.Fail_read)))
    data_blocks;
  let fd = ok (F.open_ t "/victim" Fs.Rd) in
  expect_err Errno.EIO (F.read t fd ~off:0 ~len:100)

let test_write_errors_silently_ignored () =
  (* The paper's headline ext3 bug: checkpoint write failures vanish. *)
  let d, inj, (Fs.Boxed ((module F), t) as fs) = fresh () in
  let lay = Iron_ext3.Ext3.layout_of_dev (Fault.dev inj) in
  ignore
    (Fault.arm inj
       (Fault.rule (Fault.Block (Layout.itable_block lay 0)) Fault.Fail_write));
  mkfile fs "/quiet" "q";
  ok (F.sync t);
  ok (F.unmount t);
  (* No error was surfaced, and the inode table on disk is stale. *)
  check Alcotest.bool "not readonly" false (F.is_readonly t);
  ignore d

let test_corrupt_super_fails_mount () =
  let d, inj, (Fs.Boxed ((module F), t)) = fresh () in
  ok (F.unmount t);
  let buf = Memdisk.peek d 0 in
  Bytes.set buf 0 '\xFF';
  Memdisk.poke d 0 buf;
  match Fs.mount Ext3.std (Fault.dev inj) with
  | Ok _ -> Alcotest.fail "mount should fail on corrupt superblock"
  | Error e -> check Alcotest.bool "EUCLEAN or EIO" true (e = Errno.EUCLEAN || e = Errno.EIO)

let test_linkcount_corruption_panics_stock () =
  let d, inj, (Fs.Boxed ((module F), t) as fs) = fresh () in
  mkfile fs "/doomed" "d";
  ok (F.sync t);
  let (Fs.Boxed ((module Fu), tu)) = fs in
  ok (Fu.unmount tu);
  let fs2 = ok (Fs.mount Ext3.std (Fault.dev inj)) in
  (* Corrupt the inode's link count on disk via the type-aware tweak. *)
  let lay = Iron_ext3.Ext3.layout_of_dev (Fault.dev inj) in
  let iblk = Layout.itable_block lay 0 in
  let tweak = Option.get (Iron_ext3.Classifier.corrupt_field "inode") in
  let buf = Memdisk.peek d iblk in
  tweak buf;
  Memdisk.poke d iblk buf;
  let (Fs.Boxed ((module F2), t2)) = fs2 in
  (try
     ignore (F2.unlink t2 "/doomed");
     Alcotest.fail "expected kernel panic"
   with Klog.Panic _ -> ());
  ignore t

let test_truncate_swallows_read_errors () =
  let d, inj, (Fs.Boxed ((module F), t) as fs) = fresh () in
  let big = String.make (30 * 4096) 'i' in
  mkfile fs "/leaky" big;
  ok (F.unmount t);
  let (Fs.Boxed ((module F), t)) = ok (Fs.mount Ext3.std (Fault.dev inj)) in
  let cls = Iron_ext3.Classifier.classify (Memdisk.peek d) in
  let lay = Iron_ext3.Ext3.layout_of_dev (Fault.dev inj) in
  let ind_blocks =
    List.filter (fun b -> cls b = "indirect")
      (List.init lay.Layout.num_blocks Fun.id)
  in
  check Alcotest.bool "has indirect blocks" true (ind_blocks <> []);
  List.iter
    (fun b -> ignore (Fault.arm inj (Fault.rule (Fault.Block b) Fault.Fail_read)))
    ind_blocks;
  (* Stock ext3: detected but not propagated — returns Ok and leaks. *)
  (match F.truncate t "/leaky" 0 with
  | Ok () -> ()
  | Error e -> Alcotest.failf "stock truncate should be silent, got %s" (Errno.to_string e));
  let logs = Klog.errors (F.klog t) in
  check Alcotest.bool "error was logged though" true (logs <> [])

(* --- property tests: model-based ops sequence ------------------------ *)

(* A tiny in-memory reference model: path -> content. *)
let prop_model_random_ops =
  QCheck.Test.make ~name:"random op sequences match a reference model" ~count:30
    QCheck.(list_of_size (QCheck.Gen.int_range 1 40) (pair (int_bound 9) small_string))
    (fun ops ->
      let _, _, (Fs.Boxed ((module F), t)) = fresh () in
      let model = Hashtbl.create 16 in
      let name i = Printf.sprintf "/f%d" (i mod 10) in
      List.iter
        (fun (i, content) ->
          let p = name i in
          match Hashtbl.find_opt model p with
          | None -> (
              match F.creat t p with
              | Ok fd ->
                  let data = Bytes.of_string content in
                  (match F.write t fd ~off:0 data with
                  | Ok _ -> Hashtbl.replace model p content
                  | Error _ -> ());
                  ignore (F.close t fd)
              | Error _ -> ())
          | Some _ ->
              if String.length content mod 2 = 0 then (
                match F.unlink t p with
                | Ok () -> Hashtbl.remove model p
                | Error _ -> ())
              else
                match F.truncate t p 0 with
                | Ok () -> Hashtbl.replace model p ""
                | Error _ -> ())
        ops;
      Hashtbl.fold
        (fun p content acc ->
          acc
          &&
          match F.open_ t p Fs.Rd with
          | Error _ -> false
          | Ok fd -> (
              match F.stat t p with
              | Error _ -> false
              | Ok st -> (
                  st.Fs.st_size = String.length content
                  &&
                  match F.read t fd ~off:0 ~len:st.Fs.st_size with
                  | Ok data -> Bytes.to_string data = content
                  | Error _ -> false)))
        model true)

let prop_remount_preserves_files =
  QCheck.Test.make ~name:"unmount/remount preserves files" ~count:15
    QCheck.(list_of_size (QCheck.Gen.int_range 1 10) small_string)
    (fun contents ->
      let _, inj, (Fs.Boxed ((module F), t) as fs) = fresh () in
      List.iteri (fun i c -> mkfile fs (Printf.sprintf "/p%d" i) c) contents;
      ok (F.unmount t);
      let fs2 = ok (Fs.mount Ext3.std (Fault.dev inj)) in
      List.for_all
        (fun (i, c) -> readfile fs2 (Printf.sprintf "/p%d" i) = c)
        (List.mapi (fun i c -> (i, c)) contents))

let suites =
  [
    ( "ext3.ops",
      [
        Alcotest.test_case "mkfs/mount/unmount" `Quick test_mkfs_mount_unmount;
        Alcotest.test_case "create and read back" `Quick test_create_and_read_back;
        Alcotest.test_case "stat fields" `Quick test_stat_fields;
        Alcotest.test_case "mkdir hierarchy" `Quick test_mkdir_hierarchy;
        Alcotest.test_case "getdirentries" `Quick test_getdirentries;
        Alcotest.test_case "unlink" `Quick test_unlink;
        Alcotest.test_case "link and counts" `Quick test_link_and_counts;
        Alcotest.test_case "rename" `Quick test_rename;
        Alcotest.test_case "rename replaces target" `Quick test_rename_replaces_target;
        Alcotest.test_case "rmdir nonempty" `Quick test_rmdir_nonempty;
        Alcotest.test_case "symlink/readlink/follow" `Quick test_symlink_readlink_follow;
        Alcotest.test_case "symlink loop" `Quick test_symlink_loop;
        Alcotest.test_case "chdir and relative paths" `Quick test_chdir_relative_paths;
        Alcotest.test_case "chmod/chown/utimes" `Quick test_chmod_chown_utimes;
        Alcotest.test_case "truncate shrinks and frees" `Quick test_truncate_shrinks_and_frees;
        Alcotest.test_case "large file (double indirect)" `Quick test_large_file_indirect_paths;
        Alcotest.test_case "sparse holes read zero" `Quick test_sparse_file_holes_read_zero;
        Alcotest.test_case "partial block overwrite" `Quick test_partial_block_overwrite;
        Alcotest.test_case "ENOSPC" `Quick test_enospc;
        Alcotest.test_case "errno cases" `Quick test_errno_cases;
      ] );
    ( "ext3.journal",
      [
        Alcotest.test_case "remount preserves data" `Quick test_remount_preserves_data;
        Alcotest.test_case "crash after sync recovers" `Quick
          test_crash_after_sync_recovers_via_journal;
        Alcotest.test_case "crash before sync loses txn" `Quick
          test_crash_without_sync_loses_uncommitted;
        Alcotest.test_case "recovery idempotent" `Quick test_recovery_idempotent;
      ] );
    ( "ext3.policy",
      [
        Alcotest.test_case "read failure propagates" `Quick test_read_failure_propagates;
        Alcotest.test_case "write errors silently ignored" `Quick
          test_write_errors_silently_ignored;
        Alcotest.test_case "corrupt super fails mount" `Quick test_corrupt_super_fails_mount;
        Alcotest.test_case "linkcount corruption panics" `Quick
          test_linkcount_corruption_panics_stock;
        Alcotest.test_case "truncate swallows read errors" `Quick
          test_truncate_swallows_read_errors;
      ] );
    ( "ext3.props",
      [ qtest prop_model_random_ops; qtest prop_remount_preserves_files ] );
  ]
