(* Differential fault testing: ixt3 (all IRON features) against an
   in-memory reference model, under randomly injected fail-partial
   faults.

   The invariant is the end-to-end one the paper argues for (§3):
   whatever faults the storage stack produces, a read either returns the
   RIGHT bytes or an error — never silently wrong data — and the file
   system never panics. Writes may fail (the journal aborts and the
   volume goes read-only); after a failed or unverifiable write the
   model releases its claim on that file's contents, but successful
   reads must still agree with the last agreed state. *)

open Iron_disk
module Fault = Iron_fault.Fault
module Fs = Iron_vfs.Fs
module Errno = Iron_vfs.Errno
module Klog = Iron_vfs.Klog
module Prng = Iron_util.Prng

let qtest t =
  (* Deterministic: the whole suite replays bit-for-bit. *)
  QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 3359 |]) t

type op =
  | Write of int * int * int (* file, offset-ish, length-ish *)
  | Read of int * int * int
  | Truncate of int * int
  | Recreate of int
  | Inject_fail of int (* pseudo-random block selector *)
  | Inject_corrupt of int
  | Clear_faults
  | Sync

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (4, map3 (fun a b c -> Write (a, b, c)) (int_bound 2) (int_bound 30) (int_bound 20));
        (6, map3 (fun a b c -> Read (a, b, c)) (int_bound 2) (int_bound 30) (int_bound 20));
        (1, map2 (fun a b -> Truncate (a, b)) (int_bound 2) (int_bound 10));
        (1, map (fun a -> Recreate a) (int_bound 2));
        (2, map (fun s -> Inject_fail s) (int_bound 10_000));
        (2, map (fun s -> Inject_corrupt s) (int_bound 10_000));
        (2, return Clear_faults);
        (1, return Sync);
      ])

let print_op = function
  | Write (f, o, l) -> Printf.sprintf "Write(%d,%d,%d)" f o l
  | Read (f, o, l) -> Printf.sprintf "Read(%d,%d,%d)" f o l
  | Truncate (f, n) -> Printf.sprintf "Truncate(%d,%d)" f n
  | Recreate f -> Printf.sprintf "Recreate(%d)" f
  | Inject_fail s -> Printf.sprintf "Inject_fail(%d)" s
  | Inject_corrupt s -> Printf.sprintf "Inject_corrupt(%d)" s
  | Clear_faults -> "Clear_faults"
  | Sync -> "Sync"

(* The reference: file -> Some contents (agreed) | None (unknown). *)
type model = { contents : (int, string option) Hashtbl.t }

let run_case ops =
  let d =
    Memdisk.create
      ~params:{ Memdisk.default_params with Memdisk.num_blocks = 2048; seed = 91 }
      ()
  in
  Memdisk.set_time_model d false;
  let inj = Fault.create (Memdisk.dev d) in
  let dev = Fault.dev inj in
  let brand = Iron_ixt3.Ixt3.full in
  (match Fs.mkfs brand dev with Ok () -> () | Error _ -> failwith "mkfs");
  let (Fs.Boxed ((module F), t)) =
    match Fs.mount brand dev with Ok b -> b | Error _ -> failwith "mount"
  in
  let model = { contents = Hashtbl.create 4 } in
  let path f = Printf.sprintf "/file%d" f in
  let fds = Hashtbl.create 4 in
  let fd_of f =
    match Hashtbl.find_opt fds f with
    | Some fd -> Ok fd
    | None -> (
        match F.creat t (path f) with
        | Ok fd ->
            Hashtbl.replace fds f fd;
            Hashtbl.replace model.contents f (Some "");
            Ok fd
        | Error Errno.EEXIST -> (
            match F.open_ t (path f) Fs.Rdwr with
            | Ok fd ->
                Hashtbl.replace fds f fd;
                Ok fd
            | Error e -> Error e)
        | Error e -> Error e)
  in
  let rng = Prng.create 0xD1FF in
  let chunk f off len =
    String.init len (fun i -> Char.chr (33 + ((f + off + i) mod 90)))
  in
  let taint f = Hashtbl.replace model.contents f None in
  let ok = ref true in
  let fail why op =
    ok := false;
    Printf.eprintf "differential: %s at %s\n" why (print_op op)
  in
  (try
     List.iter
       (fun op ->
         if !ok then
           match op with
           | Inject_fail sel ->
               (* Random block anywhere on the device. *)
               let b = sel mod 2048 in
               ignore (Fault.arm inj (Fault.rule (Fault.Block b) Fault.Fail_read));
               ignore (Fault.arm inj (Fault.rule (Fault.Block b) Fault.Fail_write))
           | Inject_corrupt sel ->
               let b = sel mod 2048 in
               ignore
                 (Fault.arm inj
                    (Fault.rule (Fault.Block b) (Fault.Corrupt (Fault.Noise sel))))
           | Clear_faults -> Fault.disarm_all inj
           | Sync -> (
               match F.sync t with
               | Ok () -> ()
               | Error _ ->
                   (* The journal aborted: nothing is trustworthy from
                      here on; release every claim. *)
                   Hashtbl.iter (fun f _ -> taint f) model.contents)
           | Recreate f -> (
               Hashtbl.remove fds f;
               match F.unlink t (path f) with
               | Ok () -> Hashtbl.remove model.contents f
               | Error _ -> taint f)
           | Truncate (f, n) -> (
               let size = n * 100 in
               match F.truncate t (path f) size with
               | Ok () ->
                   (match Hashtbl.find_opt model.contents f with
                   | Some (Some s) ->
                       let s' =
                         if String.length s >= size then String.sub s 0 size
                         else s ^ String.make (size - String.length s) '\000'
                       in
                       Hashtbl.replace model.contents f (Some s')
                   | Some None | None -> ())
               | Error _ -> taint f)
           | Write (f, o, l) -> (
               match fd_of f with
               | Error _ -> taint f
               | Ok fd -> (
                   let off = o * 137 in
                   let len = 1 + (l * 53) in
                   let data = chunk f off len in
                   match F.write t fd ~off (Bytes.of_string data) with
                   | Ok n when n = len -> (
                       match Hashtbl.find_opt model.contents f with
                       | Some (Some s) ->
                           let size = max (String.length s) (off + len) in
                           let b = Bytes.make size '\000' in
                           Bytes.blit_string s 0 b 0 (String.length s);
                           Bytes.blit_string data 0 b off len;
                           Hashtbl.replace model.contents f (Some (Bytes.to_string b))
                       | Some None -> ()
                       | None -> Hashtbl.replace model.contents f None)
                   | Ok _ | Error _ -> taint f))
           | Read (f, o, l) -> (
               match Hashtbl.find_opt model.contents f with
               | None | Some None -> () (* nothing agreed to check *)
               | Some (Some s) -> (
                   match fd_of f with
                   | Error _ -> ()
                   | Ok fd -> (
                       let off = o * 137 in
                       let len = 1 + (l * 53) in
                       match F.read t fd ~off ~len with
                       | Error _ -> () (* detected failure: acceptable *)
                       | Ok data ->
                           let expect_len = max 0 (min len (String.length s - off)) in
                           let expect =
                             if expect_len = 0 then "" else String.sub s off expect_len
                           in
                           if not (String.equal (Bytes.to_string data) expect) then
                             fail "SILENT WRONG DATA" op))))
       ops
   with
  | Klog.Panic msg ->
      ok := false;
      Printf.eprintf "differential: ixt3 panicked: %s\n" msg);
  ignore rng;
  !ok

let prop_ixt3_never_lies =
  QCheck.Test.make ~name:"ixt3 under random faults: right bytes or an error, never a lie"
    ~count:60
    (QCheck.make
       ~print:(fun ops -> String.concat "; " (List.map print_op ops))
       QCheck.Gen.(list_size (int_range 5 40) op_gen))
    run_case

let suites =
  [
    ( "differential",
      [
        qtest prop_ixt3_never_lies;
      ] );
  ]
