(* Tests for the benchmark harness: the application workloads, the
   timed runner, and the space analysis. *)

module Apps = Iron_workloads.Apps
module Runner = Iron_workloads.Runner
module Space = Iron_workloads.Space

let check = Alcotest.check

let test_apps_complete_on_ext3 () =
  List.iter
    (fun app ->
      match Runner.run ~num_blocks:4096 Iron_ext3.Ext3.std app with
      | Ok r ->
          check Alcotest.bool
            (app.Apps.name ^ " produced I/O")
            true
            (r.Runner.writes > 0 || r.Runner.reads > 0)
      | Error e ->
          Alcotest.failf "%s failed: %s" app.Apps.name (Iron_vfs.Errno.to_string e))
    Apps.all

let test_apps_complete_on_full_ixt3 () =
  List.iter
    (fun app ->
      match Runner.run ~num_blocks:4096 Iron_ixt3.Ixt3.full app with
      | Ok _ -> ()
      | Error e ->
          Alcotest.failf "%s failed: %s" app.Apps.name (Iron_vfs.Errno.to_string e))
    Apps.all

let test_runner_deterministic () =
  let run () =
    match Runner.run Iron_ext3.Ext3.std Apps.postmark with
    | Ok r -> (r.Runner.elapsed_ms, r.Runner.reads, r.Runner.writes)
    | Error _ -> Alcotest.fail "postmark failed"
  in
  check Alcotest.bool "same seed, same result" true (run () = run ())

let test_runner_seed_changes_workload () =
  let time seed =
    match Runner.run ~seed Iron_ext3.Ext3.std Apps.postmark with
    | Ok r -> r.Runner.writes
    | Error _ -> Alcotest.fail "postmark failed"
  in
  check Alcotest.bool "different seeds differ" true (time 1 <> time 2)

let test_tc_speeds_up_tpcb () =
  let time brand =
    match Runner.run brand Apps.tpcb with
    | Ok r -> r.Runner.elapsed_ms
    | Error _ -> Alcotest.fail "tpcb failed"
  in
  let base = time (Iron_ixt3.Ixt3.brand ()) in
  let tc = time (Iron_ixt3.Ixt3.brand ~tc:true ()) in
  check Alcotest.bool "transactional checksums help" true (tc < base)

let test_mr_costs_on_tpcb () =
  let time brand =
    match Runner.run brand Apps.tpcb with
    | Ok r -> r.Runner.elapsed_ms
    | Error _ -> Alcotest.fail "tpcb failed"
  in
  let base = time (Iron_ixt3.Ixt3.brand ()) in
  let mr = time (Iron_ixt3.Ixt3.brand ~mr:true ()) in
  check Alcotest.bool "replication costs" true (mr > base);
  check Alcotest.bool "but not catastrophically" true (mr < base *. 2.5)

let test_web_overhead_negligible () =
  let time brand =
    match Runner.run brand Apps.web with
    | Ok r -> r.Runner.elapsed_ms
    | Error _ -> Alcotest.fail "web failed"
  in
  let base = time Iron_ext3.Ext3.std in
  let full = time Iron_ixt3.Ixt3.full in
  check Alcotest.bool "read-intensive ratio ~1" true (full /. base < 1.10)

let test_batching_shrinks_tc_benefit () =
  let speedup batch =
    let app = Apps.tpcb_batched batch in
    let time brand =
      match Runner.run brand app with
      | Ok r -> r.Runner.elapsed_ms
      | Error _ -> Alcotest.fail "tpcb failed"
    in
    time (Iron_ixt3.Ixt3.brand ()) /. time (Iron_ixt3.Ixt3.brand ~tc:true ())
  in
  check Alcotest.bool "benefit decays with batching" true
    (speedup 1 > speedup 8)

let test_space_rows_in_band () =
  let rows = Space.measure () in
  check Alcotest.int "three profiles" 3 (List.length rows);
  List.iter
    (fun r ->
      check Alcotest.bool
        (r.Space.profile ^ " parity in a sane band")
        true
        (r.Space.parity_pct > 0.5 && r.Space.parity_pct < 25.0);
      check Alcotest.bool
        (r.Space.profile ^ " meta in a sane band")
        true
        (r.Space.meta_pct > 2.0 && r.Space.meta_pct < 20.0))
    rows;
  (* Parity overhead falls as files grow — the paper's 17% -> 3% trend. *)
  match rows with
  | [ small; _; large ] ->
      check Alcotest.bool "trend" true (small.Space.parity_pct > large.Space.parity_pct)
  | _ -> Alcotest.fail "row count"

let suites =
  [
    ( "workloads",
      [
        Alcotest.test_case "apps complete on ext3" `Slow test_apps_complete_on_ext3;
        Alcotest.test_case "apps complete on full ixt3" `Slow
          test_apps_complete_on_full_ixt3;
        Alcotest.test_case "runner deterministic" `Slow test_runner_deterministic;
        Alcotest.test_case "seed changes workload" `Slow test_runner_seed_changes_workload;
        Alcotest.test_case "Tc speeds up TPC-B" `Slow test_tc_speeds_up_tpcb;
        Alcotest.test_case "Mr costs on TPC-B" `Slow test_mr_costs_on_tpcb;
        Alcotest.test_case "Web overhead negligible" `Slow test_web_overhead_negligible;
        Alcotest.test_case "batching shrinks Tc benefit" `Slow
          test_batching_shrinks_tc_benefit;
        Alcotest.test_case "space rows in band" `Slow test_space_rows_in_band;
      ] );
  ]
