(* A tour of the fail-partial fault model (paper §2.3): each fault class
   the injector supports, demonstrated directly against the block device
   so the semantics are visible without a file system in the way.

   Run with: dune exec examples/fault_tour.exe *)

module Memdisk = Iron_disk.Memdisk
module Dev = Iron_disk.Dev
module Fault = Iron_fault.Fault

let show_read dev b =
  match dev.Dev.read b with
  | Ok data -> Printf.sprintf "Ok (first byte %C)" (Bytes.get data 0)
  | Error e -> Printf.sprintf "Error %s" (Dev.error_to_string e)

let () =
  let disk =
    Memdisk.create
      ~params:{ Memdisk.default_params with Memdisk.num_blocks = 64 }
      ()
  in
  let inj = Fault.create (Memdisk.dev disk) in
  let dev = Fault.dev inj in
  for b = 0 to 15 do
    Dev.write_exn dev b (Bytes.make dev.Dev.block_size (Char.chr (65 + b)))
  done;

  print_endline "== sticky latent sector error (block failure on reads) ==";
  let id = Fault.arm inj (Fault.rule (Fault.Block 3) Fault.Fail_read) in
  let r1 = show_read dev 3 in
  let r2 = show_read dev 3 in
  Printf.printf "read 3: %s; again: %s (sticky)\n" r1 r2;
  Fault.disarm inj id;
  Printf.printf "after repair/disarm: %s\n" (show_read dev 3);

  print_endline "\n== transient failure (succeeds if retried, 2.3.1) ==";
  ignore
    (Fault.arm inj
       (Fault.rule ~persistence:(Fault.Transient 2) (Fault.Block 4) Fault.Fail_read));
  let a1 = show_read dev 4 in
  let a2 = show_read dev 4 in
  let a3 = show_read dev 4 in
  Printf.printf "attempts: %s | %s | %s\n" a1 a2 a3;

  print_endline "\n== silent corruption: the read SUCCEEDS with bad data ==";
  ignore (Fault.arm inj (Fault.rule (Fault.Block 5) (Fault.Corrupt (Fault.Noise 1))));
  Printf.printf "read 5: %s  <- no error code; only a checksum would notice\n"
    (show_read dev 5);

  print_endline "\n== the byte-shift firmware bug (2.2) ==";
  ignore (Fault.arm inj (Fault.rule (Fault.Block 6) (Fault.Corrupt Fault.Byte_shift)));
  Printf.printf "read 6: %s (content circularly shifted by one byte)\n"
    (show_read dev 6);

  print_endline "\n== spatial locality: a media scratch (2.3.2) ==";
  ignore (Fault.arm inj (Fault.rule (Fault.Range (8, 11)) Fault.Fail_read));
  for b = 7 to 12 do
    Printf.printf "read %2d: %s\n" b (show_read dev b)
  done;

  print_endline "\n== phantom write (write fails, old data stays) ==";
  ignore (Fault.arm inj (Fault.rule (Fault.Block 13) Fault.Fail_write));
  (match dev.Dev.write 13 (Bytes.make dev.Dev.block_size 'Z') with
  | Ok () -> print_endline "write 13: Ok"
  | Error e -> Printf.printf "write 13: Error %s\n" (Dev.error_to_string e));
  Printf.printf "read 13: %s (previous contents)\n" (show_read dev 13);

  print_endline "\n== whole-disk failure (the classic fail-stop case) ==";
  ignore (Fault.arm inj (Fault.rule Fault.Whole_disk Fault.Fail_read));
  Printf.printf "read 0: %s\n" (show_read dev 0);

  print_endline "\n== the I/O trace the fingerprinting engine consumes ==";
  List.iteri
    (fun i e -> if i < 5 then Format.printf "  %a@." Fault.pp_event e)
    (Fault.trace inj)
