(* Quickstart: create an ixt3 volume on a simulated disk, use it through
   the VFS API, crash it, and watch journal recovery bring it back.

   Run with: dune exec examples/quickstart.exe *)

module Memdisk = Iron_disk.Memdisk
module Fs = Iron_vfs.Fs
module Errno = Iron_vfs.Errno

let ok = function
  | Ok v -> v
  | Error e -> failwith ("unexpected error: " ^ Errno.to_string e)

let () =
  (* An 8 MiB simulated disk. *)
  let disk = Memdisk.create () in
  let dev = Memdisk.dev disk in

  (* ixt3 with every IRON feature: checksums, replication, parity,
     transactional checksums. *)
  let brand = Iron_ixt3.Ixt3.full in
  ok (Fs.mkfs brand dev);
  let (Fs.Boxed ((module F), t)) = ok (Fs.mount brand dev) in

  (* Ordinary POSIX-style use. *)
  ok (F.mkdir t "/photos");
  let fd = ok (F.creat t "/photos/cat.jpg") in
  let payload = Bytes.of_string (String.concat "" (List.init 500 (fun i -> Printf.sprintf "pixel%04d" i))) in
  let n = ok (F.write t fd ~off:0 payload) in
  Printf.printf "wrote %d bytes to /photos/cat.jpg\n" n;
  ok (F.close t fd);
  ok (F.symlink t "/photos/cat.jpg" "/favourite");

  let st = ok (F.stat t "/favourite") in
  Printf.printf "stat /favourite -> ino=%d size=%d\n" st.Fs.st_ino st.Fs.st_size;

  (* Force the transaction into the journal, then "crash" by abandoning
     the mounted instance without unmounting. *)
  let fd = ok (F.open_ t "/photos/cat.jpg" Fs.Rd) in
  ok (F.fsync t fd);
  ok (F.close t fd);
  Printf.printf "journal committed; crashing without unmount...\n";

  (* Remount: recovery replays the journal. *)
  let (Fs.Boxed ((module F2), t2)) = ok (Fs.mount brand dev) in
  let fd = ok (F2.open_ t2 "/photos/cat.jpg" Fs.Rd) in
  let back = ok (F2.read t2 fd ~off:0 ~len:(Bytes.length payload)) in
  assert (Bytes.equal back payload);
  Printf.printf "after crash + recovery: /photos/cat.jpg intact (%d bytes)\n"
    (Bytes.length back);
  List.iter
    (fun e -> Format.printf "  klog: %a@." Iron_vfs.Klog.pp_entry e)
    (Iron_vfs.Klog.entries (F2.klog t2));
  ok (F2.unmount t2);
  Printf.printf "done.\n"
