(* Failure-policy fingerprinting, end to end: run the paper's campaign
   against any of the four commodity file-system models and print its
   Figure-2 block.

   Run with: dune exec examples/fingerprint_ext3.exe [ext3|reiserfs|jfs|ntfs|ixt3] *)

let brands =
  [
    ("ext3", Iron_ext3.Ext3.std);
    ("reiserfs", Iron_reiserfs.Reiserfs.brand);
    ("jfs", Iron_jfs.Jfs.brand);
    ("ntfs", Iron_ntfs.Ntfs.brand);
    ("ixt3", Iron_ext3.Ext3.ixt3);
  ]

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "ext3" in
  match List.assoc_opt name brands with
  | None ->
      Printf.eprintf "unknown file system %s (have: %s)\n" name
        (String.concat ", " (List.map fst brands));
      exit 1
  | Some brand ->
      Printf.printf "fingerprinting %s (this runs a few hundred fault-injection experiments)...\n%!" name;
      let report = Iron_core.Driver.fingerprint brand in
      Format.printf "%a@." Iron_core.Render.pp_report report;
      Printf.printf "scenarios that fired: %d; detected and recovered: %d\n"
        (Iron_core.Driver.experiments_run report)
        (Iron_core.Driver.detected_and_recovered report)
