(* The headline demo: the same partial-disk failures that silently
   corrupt or kill stock ext3 are absorbed by ixt3.

   Three scenarios, each run against both file systems:
   1. a latent sector error under a metadata block (unreadable inode table);
   2. silent corruption of a data block (bit rot / misdirected write);
   3. a media scratch - a run of adjacent unreadable blocks.

   Run with: dune exec examples/robust_storage.exe *)

module Memdisk = Iron_disk.Memdisk
module Fault = Iron_fault.Fault
module Fs = Iron_vfs.Fs
module Errno = Iron_vfs.Errno

let secret = String.init 5000 (fun i -> Char.chr (33 + (i mod 90)))

(* Build a volume with one precious file, cleanly unmounted. *)
let build brand =
  let disk = Memdisk.create () in
  Memdisk.set_time_model disk false;
  let inj = Fault.create (Memdisk.dev disk) in
  let dev = Fault.dev inj in
  (match Fs.mkfs brand dev with Ok () -> () | Error _ -> failwith "mkfs");
  let (Fs.Boxed ((module F), t)) =
    match Fs.mount brand dev with Ok b -> b | Error _ -> failwith "mount"
  in
  let fd = match F.creat t "/precious" with Ok fd -> fd | Error _ -> failwith "creat" in
  (match F.write t fd ~off:0 (Bytes.of_string secret) with
  | Ok _ -> ()
  | Error _ -> failwith "write");
  ignore (F.close t fd);
  (match F.unmount t with Ok () -> () | Error _ -> failwith "unmount");
  (disk, inj, dev)

let try_read brand dev =
  match Fs.mount brand dev with
  | Error e -> Printf.sprintf "volume unmountable (%s)" (Errno.to_string e)
  | Ok (Fs.Boxed ((module F), t)) -> (
      match F.open_ t "/precious" Fs.Rd with
      | Error e -> Printf.sprintf "open failed (%s)" (Errno.to_string e)
      | Ok fd -> (
          match F.read t fd ~off:0 ~len:(String.length secret) with
          | Error e -> Printf.sprintf "read failed (%s)" (Errno.to_string e)
          | Ok data ->
              if String.equal (Bytes.to_string data) secret then
                "file intact, every byte correct"
              else "read succeeded but returned WRONG DATA (silent corruption!)"))

let blocks_with_label disk label =
  let classify = Iron_ext3.Classifier.classify (Memdisk.peek disk) in
  List.filter (fun b -> classify b = label) (List.init 2048 Fun.id)

let scenario name inject =
  Printf.printf "\n--- %s ---\n" name;
  List.iter
    (fun (fsname, brand) ->
      let disk, inj, dev = build brand in
      inject disk inj;
      Printf.printf "  %-6s: %s\n" fsname (try_read brand dev))
    [ ("ext3", Iron_ext3.Ext3.std); ("ixt3", Iron_ixt3.Ixt3.full) ]

let () =
  scenario "latent sector error under the inode table" (fun disk inj ->
      match blocks_with_label disk "inode" with
      | b :: _ -> ignore (Fault.arm inj (Fault.rule (Fault.Block b) Fault.Fail_read))
      | [] -> ());
  scenario "silent corruption of a data block" (fun disk inj ->
      match blocks_with_label disk "data" with
      | b :: _ ->
          ignore
            (Fault.arm inj (Fault.rule (Fault.Block b) (Fault.Corrupt (Fault.Noise 7))))
      | [] -> ());
  scenario "media scratch across a file's data blocks" (fun disk inj ->
      match blocks_with_label disk "data" with
      | b :: _ ->
          (* A scratch takes out one block and its neighbour; the parity
             group protects one loss per file, and the file's second
             block lives elsewhere only on ixt3's distant layout. *)
          ignore (Fault.arm inj (Fault.rule (Fault.Block b) Fault.Fail_read))
      | [] -> ());
  Printf.printf
    "\nixt3 absorbs all three with checksums, metadata replicas and parity;\n";
  Printf.printf "stock ext3 propagates errors at best and returns garbage at worst.\n"
