examples/fault_tour.ml: Bytes Char Format Iron_disk Iron_fault List Printf
