examples/quickstart.ml: Bytes Format Iron_disk Iron_ixt3 Iron_vfs List Printf String
