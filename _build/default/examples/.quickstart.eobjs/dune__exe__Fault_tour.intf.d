examples/fault_tour.mli:
