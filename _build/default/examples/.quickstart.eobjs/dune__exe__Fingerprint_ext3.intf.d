examples/fingerprint_ext3.mli:
