examples/robust_storage.mli:
