examples/quickstart.mli:
