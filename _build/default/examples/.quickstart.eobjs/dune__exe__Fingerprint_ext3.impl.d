examples/fingerprint_ext3.ml: Array Format Iron_core Iron_ext3 Iron_jfs Iron_ntfs Iron_reiserfs List Printf String Sys
