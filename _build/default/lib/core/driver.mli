(** The failure-policy fingerprinting engine (paper §4).

    For one file-system brand, the driver:

    + builds a base image (mkfs + the standard {!Workload.fixture}, plus
      a crash image for the recovery column);
    + dry-runs each workload, tracing and type-classifying every I/O to
      learn which block of each type the workload touches and how;
    + for each (block type, workload, fault kind) with a candidate
      target, restores the image, arms one fault just below the file
      system and re-runs;
    + infers the detection and recovery techniques from the three
      observables of §4.3 — API results, the kernel log, and the
      low-level I/O trace.

    Everything is deterministic: the same brand and seed give the same
    matrices. *)

type cell = {
  applicable : bool;  (** a target block of this type was accessed *)
  fired : int;  (** times the armed fault actually triggered *)
  detection : Taxonomy.detection list;
  recovery : Taxonomy.recovery list;
  note : string;  (** e.g. the errno returned, for human inspection *)
}

val empty_cell : cell

type matrix = {
  fs_name : string;
  fault : Taxonomy.fault_kind;
  rows : string list;  (** block types *)
  cols : char list;  (** workload columns, a–t *)
  cell : string -> char -> cell;
}

type report = {
  name : string;
  block_types : string list;
  matrices : matrix list;  (** one per fault kind, in taxonomy order *)
}

val fingerprint :
  ?faults:Taxonomy.fault_kind list ->
  ?workloads:Workload.t list ->
  ?block_types:string list ->
  ?num_blocks:int ->
  ?persistence:Iron_fault.Fault.persistence ->
  Iron_vfs.Fs.brand ->
  report
(** Run the full campaign (defaults: all fault kinds, all twenty
    workloads, all of the brand's block types, a 2048-block volume,
    sticky faults). Pass [~persistence:(Transient 1)] to measure
    tolerance of transient faults (§5.6: "retry is underutilized") —
    a fault that clears on the second attempt is absorbed exactly by
    the file systems that retry. *)

val experiments_run : report -> int
(** Number of (type, workload, fault) scenarios that actually fired. *)

val detected_and_recovered : report -> int
(** Scenarios where the fault fired, was detected (not DZero) and was
    recovered by something stronger than silence. Note that stopping
    (a panic) counts: ReiserFS scores high here by crashing. *)

val detected_and_served : report -> int
(** The stronger bar the paper's ixt3 claim is about (§6.2, "detects
    and recovers from over 200 different partial-error scenarios"):
    the fault fired, was detected, and the workload still completed
    successfully — the failure was absorbed, not converted into a
    crash or an error. *)
