type detection = DZero | DErrorCode | DSanity | DRedundancy

type recovery =
  | RZero
  | RPropagate
  | RStop
  | RGuess
  | RRetry
  | RRepair
  | RRemap
  | RRedundancy

let detection_name = function
  | DZero -> "DZero"
  | DErrorCode -> "DErrorCode"
  | DSanity -> "DSanity"
  | DRedundancy -> "DRedundancy"

let recovery_name = function
  | RZero -> "RZero"
  | RPropagate -> "RPropagate"
  | RStop -> "RStop"
  | RGuess -> "RGuess"
  | RRetry -> "RRetry"
  | RRepair -> "RRepair"
  | RRemap -> "RRemap"
  | RRedundancy -> "RRedundancy"

let detection_symbol = function
  | DZero -> ' '
  | DErrorCode -> '-'
  | DSanity -> '|'
  | DRedundancy -> '\\'

let recovery_symbol = function
  | RZero -> ' '
  | RPropagate -> '-'
  | RStop -> '|'
  | RGuess -> 'g'
  | RRetry -> '/'
  | RRepair -> 'r'
  | RRemap -> 'm'
  | RRedundancy -> '\\'

let all_detections = [ DZero; DErrorCode; DSanity; DRedundancy ]

let all_recoveries =
  [ RZero; RPropagate; RStop; RGuess; RRetry; RRepair; RRemap; RRedundancy ]

type fault_kind = Read_failure | Write_failure | Corruption

let fault_kind_name = function
  | Read_failure -> "Read Failure"
  | Write_failure -> "Write Failure"
  | Corruption -> "Corruption"

let all_fault_kinds = [ Read_failure; Write_failure; Corruption ]
