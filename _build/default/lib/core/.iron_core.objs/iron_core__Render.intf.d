lib/core/render.mli: Driver Format Taxonomy
