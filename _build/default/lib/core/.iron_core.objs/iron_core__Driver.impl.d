lib/core/driver.ml: Hashtbl Iron_disk Iron_fault Iron_vfs List Result String Taxonomy Workload
