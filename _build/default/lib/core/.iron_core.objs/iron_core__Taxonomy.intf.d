lib/core/taxonomy.mli:
