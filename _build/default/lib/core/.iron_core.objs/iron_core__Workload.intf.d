lib/core/workload.mli: Iron_vfs
