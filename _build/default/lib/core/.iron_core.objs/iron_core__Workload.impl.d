lib/core/workload.ml: Bytes Char Iron_vfs List Printf Result String
