lib/core/driver.mli: Iron_fault Iron_vfs Taxonomy Workload
