lib/core/taxonomy.ml:
