lib/core/render.ml: Driver Format Hashtbl List Option String Taxonomy
