let cell_symbols ~which (c : Driver.cell) =
  if not c.Driver.applicable then "."
  else if c.Driver.fired = 0 then "o"
  else
    let syms =
      match which with
      | `Detection ->
          List.filter_map
            (fun d ->
              match Taxonomy.detection_symbol d with ' ' -> None | s -> Some s)
            c.Driver.detection
      | `Recovery ->
          List.filter_map
            (fun r ->
              match Taxonomy.recovery_symbol r with ' ' -> None | s -> Some s)
            c.Driver.recovery
    in
    match syms with
    | [] -> " " (* DZero / RZero: an observed blank *)
    | _ -> String.init (List.length syms) (List.nth syms)

let pp_matrix ~which fmt (m : Driver.matrix) =
  let kind = match which with `Detection -> "Detection" | `Recovery -> "Recovery" in
  Format.fprintf fmt "%s %s under %s@." m.Driver.fs_name kind
    (Taxonomy.fault_kind_name m.Driver.fault);
  let row_w = 11 in
  let cell_w =
    (* Wide enough for the widest superposition in this matrix. *)
    List.fold_left
      (fun w row ->
        List.fold_left
          (fun w col ->
            max w (String.length (cell_symbols ~which (m.Driver.cell row col))))
          w m.Driver.cols)
      1 m.Driver.rows
  in
  Format.fprintf fmt "%*s" row_w "";
  List.iter (fun c -> Format.fprintf fmt " %*s" cell_w (String.make 1 c)) m.Driver.cols;
  Format.fprintf fmt "@.";
  List.iter
    (fun row ->
      Format.fprintf fmt "%-*s" row_w row;
      List.iter
        (fun col ->
          Format.fprintf fmt " %*s" cell_w (cell_symbols ~which (m.Driver.cell row col)))
        m.Driver.cols;
      Format.fprintf fmt "@.")
    m.Driver.rows

let pp_key fmt () =
  Format.fprintf fmt
    "key: detection  '-' error code  '|' sanity  '\\' redundancy  ' ' none@.";
  Format.fprintf fmt
    "     recovery   '-' propagate  '|' stop  '/' retry  '\\' redundancy@.";
  Format.fprintf fmt
    "                'g' guess  'r' repair  'm' remap  ' ' none@.";
  Format.fprintf fmt
    "     cells      '.' not applicable  'o' fault armed but never triggered@."

let pp_report fmt (r : Driver.report) =
  Format.fprintf fmt "=== Failure policy of %s ===@." r.Driver.name;
  List.iter
    (fun m ->
      pp_matrix ~which:`Detection fmt m;
      Format.fprintf fmt "@.";
      pp_matrix ~which:`Recovery fmt m;
      Format.fprintf fmt "@.")
    r.Driver.matrices;
  pp_key fmt ()

type summary =
  (string * (Taxonomy.detection * int) list * (Taxonomy.recovery * int) list) list

let summarize reports =
  List.map
    (fun (r : Driver.report) ->
      let dcount = Hashtbl.create 8 and rcount = Hashtbl.create 8 in
      let bump tbl k =
        Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k))
      in
      List.iter
        (fun (m : Driver.matrix) ->
          List.iter
            (fun row ->
              List.iter
                (fun col ->
                  let c = m.Driver.cell row col in
                  if c.Driver.fired > 0 then begin
                    List.iter (bump dcount) c.Driver.detection;
                    List.iter (bump rcount) c.Driver.recovery
                  end)
                m.Driver.cols)
            m.Driver.rows)
        r.Driver.matrices;
      ( r.Driver.name,
        List.map
          (fun d -> (d, Option.value ~default:0 (Hashtbl.find_opt dcount d)))
          Taxonomy.all_detections,
        List.map
          (fun rc -> (rc, Option.value ~default:0 (Hashtbl.find_opt rcount rc)))
          Taxonomy.all_recoveries ))
    reports

(* Bucket raw frequencies into the paper's 0-4 checkmark scale. *)
let checks total n =
  if n = 0 then ""
  else
    let frac = float_of_int n /. float_of_int (max 1 total) in
    let k =
      if frac > 0.5 then 4
      else if frac > 0.25 then 3
      else if frac > 0.1 then 2
      else 1
    in
    String.concat "" (List.init k (fun _ -> "*"))

let pp_summary fmt (s : summary) =
  let names = List.map (fun (n, _, _) -> n) s in
  Format.fprintf fmt "Technique summary (Table 5): '*' = relative frequency@.";
  Format.fprintf fmt "%-14s" "Level";
  List.iter (fun n -> Format.fprintf fmt " %-10s" n) names;
  Format.fprintf fmt "@.";
  let total (r : Driver.report option) = ignore r in
  ignore total;
  let totals =
    List.map
      (fun (_, ds, _) -> List.fold_left (fun a (_, n) -> a + n) 0 ds)
      s
  in
  List.iter
    (fun d ->
      Format.fprintf fmt "%-14s" (Taxonomy.detection_name d);
      List.iter2
        (fun (_, ds, _) total ->
          let n = List.assoc d ds in
          Format.fprintf fmt " %-10s" (checks total n))
        s totals;
      Format.fprintf fmt "@.")
    Taxonomy.all_detections;
  List.iter
    (fun r ->
      Format.fprintf fmt "%-14s" (Taxonomy.recovery_name r);
      List.iter2
        (fun (_, _, rs) total ->
          let n = List.assoc r rs in
          Format.fprintf fmt " %-10s" (checks total n))
        s totals;
      Format.fprintf fmt "@.")
    Taxonomy.all_recoveries
