module Fs = Iron_vfs.Fs
module Errno = Iron_vfs.Errno

let ( let* ) = Result.bind

type kind = Ops | Mount_op | Umount_op | Recovery_op

type t = {
  col : char;
  name : string;
  kind : kind;
  run : Fs.boxed -> (unit, Errno.t) result;
  verify : (Fs.boxed -> bool) option;
}

(* ---- helpers over boxed instances --------------------------------- *)

let pattern tag n = String.init n (fun i -> Char.chr ((i + Char.code tag) mod 251))

let put (Fs.Boxed ((module F), t)) path content =
  let* fd = F.creat t path in
  let* _ = F.write t fd ~off:0 (Bytes.of_string content) in
  F.close t fd

let get (Fs.Boxed ((module F), t)) path =
  let* fd = F.open_ t path Fs.Rd in
  let* st = F.stat t path in
  let* data = F.read t fd ~off:0 ~len:st.Fs.st_size in
  let* () = F.close t fd in
  Ok (Bytes.to_string data)

let bs = 4096

(* ---- the standard fixture ------------------------------------------ *)

(* Sizes chosen for the scaled-down geometry (4 direct, 16-wide
   indirect): /mid uses the single indirect block, /large reaches
   double indirection at file block 20. *)
let mid_size = 12 * bs
let large_size = 40 * bs

let fixture (Fs.Boxed ((module F), t) as fs) =
  let* () = F.mkdir t "/d1" in
  let* () = F.mkdir t "/d1/d2" in
  let* () = put fs "/small" (pattern 's' 100) in
  let* () = put fs "/mid" (pattern 'm' mid_size) in
  let* () = put fs "/large" (pattern 'l' large_size) in
  let* () = put fs "/d1/inner" (pattern 'i' 200) in
  let* () = put fs "/d1/d2/deep" (pattern 'd' 100) in
  let* () = put fs "/tolink" (pattern 't' 50) in
  let* () = F.symlink t "/small" "/sym" in
  let* () = put fs "/del" (pattern 'x' (6 * bs)) in
  let* () = put fs "/trunc" (pattern 'y' mid_size) in
  let* () = put fs "/ren" (pattern 'r' 80) in
  let* () = F.mkdir t "/deldir" in
  let* () = F.mkdir t "/rendir" in
  F.sync t

let crash_prep (Fs.Boxed ((module F), t) as fs) =
  let* () = put fs "/crashfile1" (pattern 'c' 300) in
  let* () = F.mkdir t "/crashdir" in
  let* () = put fs "/crashdir/f" (pattern 'k' 100) in
  (* fsync commits the journal without checkpointing: abandoning the
     instance now leaves a crash image whose mount must replay. *)
  let* fd = F.open_ t "/crashfile1" Fs.Rd in
  let* () = F.fsync t fd in
  F.close t fd

(* ---- the twenty columns -------------------------------------------- *)

let ops col name ?verify run = { col; name; kind = Ops; run; verify }

let w_traversal =
  ops 'a' "path traversal" (fun (Fs.Boxed ((module F), t)) ->
      let* _ = F.stat t "/d1/d2/deep" in
      Ok ())

let w_access =
  ops 'b' "access,chdir,chroot,stat,statfs,lstat,open"
    (fun (Fs.Boxed ((module F), t)) ->
      let* () = F.access t "/small" in
      let* () = F.chdir t "/d1" in
      let* () = F.chdir t "/" in
      let* _ = F.stat t "/mid" in
      let* _ = F.statfs t in
      let* _ = F.lstat t "/sym" in
      let* fd = F.open_ t "/large" Fs.Rd in
      F.close t fd)

let w_attr =
  ops 'c' "chmod,chown,utimes" (fun (Fs.Boxed ((module F), t)) ->
      let* () = F.chmod t "/small" 0o640 in
      let* () = F.chown t "/small" 3 4 in
      let* () = F.utimes t "/mid" 10.0 20.0 in
      F.sync t)

let w_read =
  {
    col = 'd';
    name = "read";
    kind = Ops;
    run =
      (fun (Fs.Boxed ((module F), t)) ->
        let* fd = F.open_ t "/large" Fs.Rd in
        let* _ = F.read t fd ~off:0 ~len:large_size in
        F.close t fd);
    verify =
      Some
        (fun fs ->
          match get fs "/large" with
          | Ok data -> String.equal data (pattern 'l' large_size)
          | Error _ -> true (* an error is not a silent wrong answer *));
  }

let w_readlink =
  ops 'e' "readlink" (fun (Fs.Boxed ((module F), t)) ->
      let* _ = F.readlink t "/sym" in
      Ok ())

let w_getdirentries =
  ops 'f' "getdirentries" (fun (Fs.Boxed ((module F), t)) ->
      let* entries = F.getdirentries t "/d1" in
      if List.mem_assoc "inner" entries then Ok () else Error Errno.EIO)

let w_creat =
  ops 'g' "creat" (fun (Fs.Boxed ((module F), t) as fs) ->
      let* () = put fs "/fresh" (pattern 'f' 100) in
      F.sync t)

let w_link =
  ops 'h' "link" (fun (Fs.Boxed ((module F), t)) ->
      let* () = F.link t "/tolink" "/alias" in
      F.sync t)

let w_mkdir =
  ops 'i' "mkdir" (fun (Fs.Boxed ((module F), t)) ->
      let* () = F.mkdir t "/newdir" in
      F.sync t)

let w_rename =
  ops 'j' "rename" (fun (Fs.Boxed ((module F), t)) ->
      let* () = F.rename t "/ren" "/rendir/moved" in
      F.sync t)

let w_symlink =
  ops 'k' "symlink" (fun (Fs.Boxed ((module F), t)) ->
      let* () = F.symlink t "/mid" "/sym2" in
      F.sync t)

let w_write =
  ops 'l' "write" (fun (Fs.Boxed ((module F), t)) ->
      let* fd = F.open_ t "/mid" Fs.Rdwr in
      let* _ = F.write t fd ~off:(3 * bs) (Bytes.of_string (pattern 'w' (2 * bs))) in
      let* () = F.close t fd in
      F.sync t)

let w_truncate =
  ops 'm' "truncate" (fun (Fs.Boxed ((module F), t)) ->
      let* () = F.truncate t "/trunc" 100 in
      F.sync t)

let w_rmdir =
  ops 'n' "rmdir" (fun (Fs.Boxed ((module F), t)) ->
      let* () = F.rmdir t "/deldir" in
      F.sync t)

let w_unlink =
  ops 'o' "unlink" (fun (Fs.Boxed ((module F), t)) ->
      let* () = F.unlink t "/del" in
      F.sync t)

let w_mount =
  { col = 'p'; name = "mount"; kind = Mount_op; run = (fun _ -> Ok ()); verify = None }

let w_sync =
  ops 'q' "fsync,sync" (fun (Fs.Boxed ((module F), t) as fs) ->
      let* () = put fs "/syncme" (pattern 'q' 500) in
      let* fd = F.open_ t "/syncme" Fs.Wr in
      let* _ = F.write t fd ~off:0 (Bytes.of_string "head") in
      let* () = F.fsync t fd in
      let* () = F.close t fd in
      F.sync t)

let w_umount =
  {
    col = 'r';
    name = "umount";
    kind = Umount_op;
    run =
      (fun (Fs.Boxed ((module F), t) as fs) ->
        (* Leave work for unmount's checkpoint to do: commit without
           checkpointing. *)
        let* () = put fs "/atexit" (pattern 'u' 300) in
        let* fd = F.open_ t "/atexit" Fs.Rd in
        let* () = F.fsync t fd in
        F.close t fd);
    verify = None;
  }

let w_recovery =
  { col = 's'; name = "FS recovery"; kind = Recovery_op; run = (fun _ -> Ok ()); verify = None }

let w_logwrites =
  ops 't' "log writes" (fun (Fs.Boxed ((module F), t) as fs) ->
      let* () = put fs "/log1" (pattern '1' 200) in
      let* () = F.sync t in
      let* () = put fs "/log2" (pattern '2' 200) in
      let* () = F.mkdir t "/logd" in
      F.sync t)

let all =
  [
    w_traversal; w_access; w_attr; w_read; w_readlink; w_getdirentries;
    w_creat; w_link; w_mkdir; w_rename; w_symlink; w_write; w_truncate;
    w_rmdir; w_unlink; w_mount; w_sync; w_umount; w_recovery; w_logwrites;
  ]

let find col =
  match List.find_opt (fun w -> w.col = col) all with
  | Some w -> w
  | None -> invalid_arg (Printf.sprintf "Workload.find: no column %c" col)
