(** The IRON taxonomy (paper §3, Tables 1 and 2).

    A file system's {e failure policy} is, per (workload, block type,
    fault kind), the set of detection techniques and recovery techniques
    it applies. Sets, not single values: the paper superimposes symbols
    when multiple mechanisms are observed. *)

type detection =
  | DZero  (** no detection: the fault passes unnoticed *)
  | DErrorCode  (** return codes from the layer below are checked *)
  | DSanity  (** structural/type checks on the data itself *)
  | DRedundancy  (** checksums or cross-copy comparison *)

type recovery =
  | RZero  (** no recovery, client not even told *)
  | RPropagate  (** error surfaced to the caller *)
  | RStop  (** crash / panic / read-only remount / abort *)
  | RGuess  (** fabricated data returned as if valid *)
  | RRetry  (** the failed operation is reissued *)
  | RRepair  (** structures fixed in place (fsck-like) *)
  | RRemap  (** block rewritten elsewhere *)
  | RRedundancy  (** replica or parity used to reconstruct *)

val detection_name : detection -> string
val recovery_name : recovery -> string

val detection_symbol : detection -> char
(** Figure-2 key: [' '] DZero, ['-'] DErrorCode, ['|'] DSanity,
    ['\\'] DRedundancy. *)

val recovery_symbol : recovery -> char
(** Figure-2 key: [' '] RZero, ['-'] RPropagate, ['|'] RStop,
    ['/'] RRetry, ['\\'] RRedundancy, ['g'] RGuess, ['r'] RRepair,
    ['m'] RRemap. *)

val all_detections : detection list
val all_recoveries : recovery list

(** The three fault classes of the fail-partial model applied to a
    single block (§2.3). *)
type fault_kind = Read_failure | Write_failure | Corruption

val fault_kind_name : fault_kind -> string
val all_fault_kinds : fault_kind list
