(** The fingerprinting workload suite (paper Table 3, Figure 2 columns).

    Twenty columns, [a] through [t]: singlets that each stress one POSIX
    entry point, plus the generic workloads (path traversal, mount,
    unmount, FS recovery, log writes). Every workload runs against the
    standard {!fixture} tree, which is built — per §4.1 — so that large
    files exercise the indirect-pointer paths and directories span
    blocks. *)

type kind =
  | Ops  (** mount, then run under fault, then unmount *)
  | Mount_op  (** the fault window is the mount itself *)
  | Umount_op  (** light activity, then the fault window is unmount *)
  | Recovery_op  (** mount a crashed image: journal replay under fault *)

type t = {
  col : char;
  name : string;
  kind : kind;
  run : Iron_vfs.Fs.boxed -> (unit, Iron_vfs.Errno.t) result;
      (** The measured phase for [Ops]; the pre-unmount activity for
          [Umount_op]; ignored for [Mount_op] and [Recovery_op]. *)
  verify : (Iron_vfs.Fs.boxed -> bool) option;
      (** Post-run data check; [false] with an [Ok] run marks RGuess. *)
}

val all : t list
(** The twenty columns in paper order (a–t). *)

val find : char -> t

val fixture : Iron_vfs.Fs.boxed -> (unit, Iron_vfs.Errno.t) result
(** Populate a fresh volume: directories two levels deep, small / medium
    / large files (the large one reaches double-indirect blocks), a
    symlink, link/rename/unlink/truncate victims. *)

val crash_prep : Iron_vfs.Fs.boxed -> (unit, Iron_vfs.Errno.t) result
(** Commit metadata into the journal without checkpointing; abandoning
    the instance afterwards leaves a crash image whose mount must
    replay. *)

(** {2 Helpers shared with examples and benchmarks} *)

val pattern : char -> int -> string
(** Deterministic file contents: [pattern tag n]. *)

val put :
  Iron_vfs.Fs.boxed -> string -> string -> (unit, Iron_vfs.Errno.t) result
(** Create a file with the given contents. *)

val get : Iron_vfs.Fs.boxed -> string -> (string, Iron_vfs.Errno.t) result
(** Read a whole file. *)
