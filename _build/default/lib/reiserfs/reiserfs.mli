(** The ReiserFS (version 3) model: virtually all metadata in one
    balanced tree, and the paper's "first, do no harm" failure policy —
    heavy sanity checking of node headers, and a kernel panic on
    virtually any write failure (§5.2). The documented bugs are
    modelled too: ordered-data write failures are journalled over
    silently, indirect-item read failures during delete paths leak
    space, and journal replay performs no content checking. *)

val brand : Iron_vfs.Fs.brand

val block_types : string list
val classify : (int -> bytes) -> int -> string
(** Exposed for tests and the scrubbing/space tooling. *)
