open Iron_util
module Fs = Iron_vfs.Fs

type item_kind = Stat | Dirent | Direct | Indirect

let kind_rank = function Stat -> 0 | Dirent -> 1 | Direct -> 2 | Indirect -> 3

let kind_of_rank = function
  | 0 -> Some Stat
  | 1 -> Some Dirent
  | 2 -> Some Direct
  | 3 -> Some Indirect
  | _ -> None

type key = { objid : int; kind : item_kind; offset : int }

let compare_key a b =
  match compare a.objid b.objid with
  | 0 -> (
      match compare (kind_rank a.kind) (kind_rank b.kind) with
      | 0 -> compare a.offset b.offset
      | c -> c)
  | c -> c

type stat_body = {
  sk : Fs.kind;
  links : int;
  uid : int;
  gid : int;
  perms : int;
  size : int;
  atime : int;
  mtime : int;
  ctime : int;
  target : string;
}

type body =
  | Stat_body of stat_body
  | Dirent_body of (string * int) list
  | Direct_body of string
  | Indirect_body of int array

type item = { key : key; body : body }
type node = Leaf of item list | Internal of key list * int list

let max_leaf_items = 4
let max_children = 4
let max_indirect_ptrs = 32
let max_direct_bytes = 1024
let header_size = 8

type header = { level : int; nitems : int; free_space : int }

let decode_header buf =
  {
    level = Bytes.get_uint16_le buf 0;
    nitems = Bytes.get_uint16_le buf 2;
    free_space = Bytes.get_uint16_le buf 4;
  }

let header_plausible block_size h =
  h.level >= 1 && h.level <= 7
  && h.nitems <= max max_leaf_items max_children
  && h.free_space <= block_size

let put_key w (k : key) =
  Codec.put_u32 w k.objid;
  Codec.put_u32 w (kind_rank k.kind);
  Codec.put_u32 w k.offset

let get_key r =
  let objid = Codec.get_u32 r in
  let rank = Codec.get_u32 r in
  let offset = Codec.get_u32 r in
  match kind_of_rank rank with
  | Some kind -> Some { objid; kind; offset }
  | None -> None

let fs_kind_code = function Fs.Regular -> 1 | Fs.Directory -> 2 | Fs.Symlink -> 3

let fs_kind_of_code = function
  | 1 -> Some Fs.Regular
  | 2 -> Some Fs.Directory
  | 3 -> Some Fs.Symlink
  | _ -> None

let encode_body w = function
  | Stat_body s ->
      Codec.put_u8 w (fs_kind_code s.sk);
      Codec.put_u16 w s.links;
      Codec.put_u16 w s.uid;
      Codec.put_u16 w s.gid;
      Codec.put_u16 w s.perms;
      Codec.put_u32 w s.size;
      Codec.put_u32 w s.atime;
      Codec.put_u32 w s.mtime;
      Codec.put_u32 w s.ctime;
      Codec.put_u16 w (String.length s.target);
      Codec.put_string w s.target
  | Dirent_body entries ->
      Codec.put_u16 w (List.length entries);
      List.iter
        (fun (name, objid) ->
          Codec.put_u32 w objid;
          Codec.put_u16 w (String.length name);
          Codec.put_string w name)
        entries
  | Direct_body tail ->
      Codec.put_u16 w (String.length tail);
      Codec.put_string w tail
  | Indirect_body ptrs ->
      Codec.put_u16 w (Array.length ptrs);
      Array.iter (Codec.put_u32 w) ptrs

let body_size = function
  | Stat_body s -> 25 + 2 + String.length s.target
  | Dirent_body es ->
      2 + List.fold_left (fun a (n, _) -> a + 6 + String.length n) 0 es
  | Direct_body tail -> 2 + String.length tail
  | Indirect_body ptrs -> 2 + (4 * Array.length ptrs)

let item_size it = 12 + 2 + body_size it.body

let decode_body kind r =
  match kind with
  | Stat ->
      let code = Codec.get_u8 r in
      let links = Codec.get_u16 r in
      let uid = Codec.get_u16 r in
      let gid = Codec.get_u16 r in
      let perms = Codec.get_u16 r in
      let size = Codec.get_u32 r in
      let atime = Codec.get_u32 r in
      let mtime = Codec.get_u32 r in
      let ctime = Codec.get_u32 r in
      let tlen = Codec.get_u16 r in
      if tlen > Codec.remaining r then None
      else
        let target = Codec.get_string r tlen in
        Option.map
          (fun sk ->
            Stat_body { sk; links; uid; gid; perms; size; atime; mtime; ctime; target })
          (fs_kind_of_code code)
  | Dirent ->
      let count = Codec.get_u16 r in
      if count > 4096 then None
      else
        let rec go n acc =
          if n = 0 then Some (Dirent_body (List.rev acc))
          else
            let objid = Codec.get_u32 r in
            let nlen = Codec.get_u16 r in
            if nlen > Codec.remaining r then None
            else
              let name = Codec.get_string r nlen in
              go (n - 1) ((name, objid) :: acc)
        in
        go count []
  | Direct ->
      let len = Codec.get_u16 r in
      if len > max_direct_bytes || len > Codec.remaining r then None
      else Some (Direct_body (Codec.get_string r len))
  | Indirect ->
      let count = Codec.get_u16 r in
      if count > max_indirect_ptrs then None
      else Some (Indirect_body (Array.init count (fun _ -> Codec.get_u32 r)))

let leaf_fits block_size items =
  List.length items <= max_leaf_items
  && header_size + List.fold_left (fun a it -> a + item_size it) 0 items
     <= block_size

let node_level = function Leaf _ -> 1 | Internal _ -> 2

let encode block_size node buf =
  Bytes.fill buf 0 (Bytes.length buf) '\000';
  match node with
  | Leaf items ->
      if not (leaf_fits block_size items) then failwith "Rnode.encode: leaf overflow";
      let w = Codec.writer buf in
      Codec.put_u16 w 1;
      Codec.put_u16 w (List.length items);
      let used =
        header_size + List.fold_left (fun a it -> a + item_size it) 0 items
      in
      Codec.put_u16 w (block_size - used);
      Codec.put_u16 w 0;
      List.iter
        (fun it ->
          put_key w it.key;
          Codec.put_u16 w (body_size it.body);
          encode_body w it.body)
        items
  | Internal (keys, children) ->
      if List.length children > max_children then
        failwith "Rnode.encode: internal overflow";
      if List.length keys + 1 <> List.length children then
        failwith "Rnode.encode: key/child mismatch";
      let w = Codec.writer buf in
      (* Internal levels are encoded as 2; the tree code does not rely
         on exact heights in the header beyond the leaf/internal split,
         but sanity checks still validate the range. *)
      Codec.put_u16 w 2;
      Codec.put_u16 w (List.length children);
      Codec.put_u16 w 0;
      Codec.put_u16 w 0;
      List.iter (put_key w) keys;
      List.iter (Codec.put_u32 w) children

let decode buf =
  try
    let h = decode_header buf in
    if not (header_plausible (Bytes.length buf) h) then None
    else if h.level = 1 then begin
      let r = Codec.reader ~pos:header_size buf in
      let rec go n acc =
        if n = 0 then Some (Leaf (List.rev acc))
        else
          match get_key r with
          | None -> None
          | Some key -> (
              let len = Codec.get_u16 r in
              if len > Codec.remaining r then None
              else
                let body_bytes = Codec.get_bytes r len in
                let br = Codec.reader body_bytes in
                match decode_body key.kind br with
                | Some body -> go (n - 1) ({ key; body } :: acc)
                | None -> None)
      in
      go h.nitems []
    end
    else begin
      let r = Codec.reader ~pos:header_size buf in
      let nchildren = h.nitems in
      if nchildren = 0 then None
      else
        let rec keys n acc =
          if n = 0 then Some (List.rev acc)
          else
            match get_key r with
            | None -> None
            | Some k -> keys (n - 1) (k :: acc)
        in
        match keys (nchildren - 1) [] with
        | None -> None
        | Some ks ->
            let children = List.init nchildren (fun _ -> Codec.get_u32 r) in
            Some (Internal (ks, children))
    end
  with Codec.Decode_error _ -> None

let min_key = function
  | Leaf [] -> None
  | Leaf (it :: _) -> Some it.key
  | Internal (keys, _) -> ( match keys with k :: _ -> Some k | [] -> None)
