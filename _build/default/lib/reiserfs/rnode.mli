(** Balanced-tree node and item codecs for the ReiserFS model.

    Every node (internal or leaf) starts with a block header carrying
    its level, item count and free space — exactly the fields the real
    system sanity-checks on each access (paper §5.2). Leaves hold typed
    items ordered by {!key}; internal nodes hold separator keys and
    child pointers.

    Geometry is scaled down (at most {!max_leaf_items} items per leaf,
    {!max_children} children per internal node) so the standard fixture
    already produces a three-level tree, exercising root, internal and
    leaf paths. *)

type item_kind = Stat | Dirent | Direct | Indirect

val kind_rank : item_kind -> int

type key = { objid : int; kind : item_kind; offset : int }

val compare_key : key -> key -> int

type stat_body = {
  sk : Iron_vfs.Fs.kind;
  links : int;
  uid : int;
  gid : int;
  perms : int;
  size : int;
  atime : int;
  mtime : int;
  ctime : int;
  target : string;  (** symlink target, inline *)
}

type body =
  | Stat_body of stat_body
  | Dirent_body of (string * int) list
  | Direct_body of string
      (** a small file (or tail) stored inline in the leaf — the
          "direct item" of Table 4 *)
  | Indirect_body of int array  (** unformatted-block pointers *)

type item = { key : key; body : body }

type node =
  | Leaf of item list
  | Internal of key list * int list  (** n separator keys, n+1 children *)

val max_leaf_items : int
val max_children : int
val max_indirect_ptrs : int

val max_direct_bytes : int
(** Largest file stored as a direct item; beyond this it converts to
    unformatted blocks behind an indirect item. *)

type header = { level : int; nitems : int; free_space : int }

val decode_header : bytes -> header
val header_plausible : int -> header -> bool
(** Block-size-aware sanity check: level within bounds, item count and
    free space possible. This is the check ReiserFS runs on every node
    it touches. *)

val encode : int -> node -> bytes -> unit
(** [encode block_size node buf]; raises [Failure] if the node cannot
    fit (callers must split first). *)

val decode : bytes -> node option
(** [None] when the header fails {!header_plausible} or the items are
    structurally impossible. *)

val node_level : node -> int
val leaf_fits : int -> item list -> bool

val min_key : node -> key option
(** Leftmost key, for separator maintenance. *)
