lib/reiserfs/reiserfs.ml: Array Bytes Char Codec Hashtbl Iron_disk Iron_util Iron_vfs List Option Result Rnode String
