lib/reiserfs/rnode.ml: Array Bytes Codec Iron_util Iron_vfs List Option String
