lib/reiserfs/reiserfs.mli: Iron_vfs
