lib/reiserfs/rnode.mli: Iron_vfs
