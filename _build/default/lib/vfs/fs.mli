(** The VFS-level interface every file system under test implements.

    The operation set mirrors the paper's workload table (Table 3): each
    singlet workload stresses one of these entry points. Operations take
    absolute or cwd-relative paths; [read]/[write]/[fsync] take a file
    descriptor from [open_] or [creat].

    A file system that decides to crash calls {!Klog.panic}; the caller
    (the fingerprinting machine, or an example program) catches
    {!Klog.Panic}. A file system that remounts itself read-only reports
    it via [is_readonly] and fails subsequent updates with [EROFS]. *)

type kind = Regular | Directory | Symlink

val kind_to_string : kind -> string

type stat = {
  st_ino : int;
  st_kind : kind;
  st_size : int;
  st_links : int;
  st_mode : int;
  st_uid : int;
  st_gid : int;
  st_atime : float;
  st_mtime : float;
  st_ctime : float;
}

type statfs = {
  f_blocks : int;  (** total data blocks *)
  f_bfree : int;
  f_files : int;  (** total inodes *)
  f_ffree : int;
  f_bsize : int;
}

type open_mode = Rd | Wr | Rdwr

type fd = int

module type S = sig
  val fs_name : string

  val block_types : string list
  (** The rows of this file system's Figure-2 matrix. *)

  val classifier : (int -> bytes) -> int -> string
  (** [classifier raw] builds the gray-box block-type oracle: [raw b]
      reads block [b] directly from the medium (no faults, no timing).
      The oracle may sniff magic numbers to distinguish, e.g., journal
      descriptor blocks from journaled data. Returns a member of
      [block_types], or ["?"] for blocks it cannot name. *)

  val corrupt_field : string -> (bytes -> unit) option
  (** Type-aware corruption: given a block type, a mutation that leaves
      the block plausible but wrong (e.g. an inode whose link count is
      garbage), per §4.2. [None] means: use random noise. *)

  type t

  val mkfs : Iron_disk.Dev.t -> (unit, Errno.t) result
  val mount : Iron_disk.Dev.t -> (t, Errno.t) result
  val unmount : t -> (unit, Errno.t) result
  val klog : t -> Klog.t
  val is_readonly : t -> bool

  val access : t -> string -> (unit, Errno.t) result
  val chdir : t -> string -> (unit, Errno.t) result
  val chroot : t -> string -> (unit, Errno.t) result
  val stat : t -> string -> (stat, Errno.t) result
  val lstat : t -> string -> (stat, Errno.t) result
  val statfs : t -> (statfs, Errno.t) result
  val open_ : t -> string -> open_mode -> (fd, Errno.t) result
  val close : t -> fd -> (unit, Errno.t) result
  val creat : t -> string -> (fd, Errno.t) result
  val read : t -> fd -> off:int -> len:int -> (bytes, Errno.t) result
  val write : t -> fd -> off:int -> bytes -> (int, Errno.t) result
  val readlink : t -> string -> (string, Errno.t) result
  val getdirentries : t -> string -> ((string * int) list, Errno.t) result
  val link : t -> string -> string -> (unit, Errno.t) result
  val symlink : t -> string -> string -> (unit, Errno.t) result
  val mkdir : t -> string -> (unit, Errno.t) result
  val rmdir : t -> string -> (unit, Errno.t) result
  val unlink : t -> string -> (unit, Errno.t) result
  val rename : t -> string -> string -> (unit, Errno.t) result
  val truncate : t -> string -> int -> (unit, Errno.t) result
  val chmod : t -> string -> int -> (unit, Errno.t) result
  val chown : t -> string -> int -> int -> (unit, Errno.t) result
  val utimes : t -> string -> float -> float -> (unit, Errno.t) result
  val fsync : t -> fd -> (unit, Errno.t) result
  val sync : t -> (unit, Errno.t) result
end

(** A mounted file system whose concrete type is hidden; the
    fingerprinting engine works over these. *)
type boxed = Boxed : (module S with type t = 'a) * 'a -> boxed

(** A file system "brand": everything needed to mkfs/mount fresh
    instances generically. *)
type brand = Brand : (module S with type t = 'a) -> brand

val brand_name : brand -> string
val brand_block_types : brand -> string list
val mkfs : brand -> Iron_disk.Dev.t -> (unit, Errno.t) result
val mount : brand -> Iron_disk.Dev.t -> (boxed, Errno.t) result
