type t =
  | EIO
  | ENOENT
  | ENOSPC
  | ENOTDIR
  | EISDIR
  | EEXIST
  | ENOTEMPTY
  | EROFS
  | EFBIG
  | ENAMETOOLONG
  | EBADF
  | EINVAL
  | ENFILE
  | ELOOP
  | EUCLEAN

let to_string = function
  | EIO -> "EIO"
  | ENOENT -> "ENOENT"
  | ENOSPC -> "ENOSPC"
  | ENOTDIR -> "ENOTDIR"
  | EISDIR -> "EISDIR"
  | EEXIST -> "EEXIST"
  | ENOTEMPTY -> "ENOTEMPTY"
  | EROFS -> "EROFS"
  | EFBIG -> "EFBIG"
  | ENAMETOOLONG -> "ENAMETOOLONG"
  | EBADF -> "EBADF"
  | EINVAL -> "EINVAL"
  | ENFILE -> "ENFILE"
  | ELOOP -> "ELOOP"
  | EUCLEAN -> "EUCLEAN"

let pp fmt e = Format.pp_print_string fmt (to_string e)
let equal (a : t) b = a = b
