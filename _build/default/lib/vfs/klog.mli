(** Per-mount kernel-log capture.

    Each mounted file system owns a [Klog.t]; everything it would have
    [printk]'d goes here, and the fingerprinting engine inspects it as
    one of the three observable outputs (§4.3). [panic] models a kernel
    panic (ReiserFS's favourite recovery technique): it logs and raises
    {!Panic}, which the caller of the file-system operation — the
    "machine" — catches. *)

type level = Info | Warning | Error

type entry = { level : level; subsystem : string; message : string }

type t

exception Panic of string

val create : unit -> t
val log : t -> level -> string -> ('a, Format.formatter, unit, unit) format4 -> 'a
val info : t -> string -> ('a, Format.formatter, unit, unit) format4 -> 'a
val warn : t -> string -> ('a, Format.formatter, unit, unit) format4 -> 'a
val error : t -> string -> ('a, Format.formatter, unit, unit) format4 -> 'a

val panic : t -> string -> ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Logs at [Error] then raises {!Panic}. Never returns. *)

val entries : t -> entry list
(** Oldest first. *)

val errors : t -> entry list
val clear : t -> unit
val pp_entry : Format.formatter -> entry -> unit
