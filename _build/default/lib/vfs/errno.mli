(** POSIX-style error codes returned through the file-system API.

    These are the "observable outputs" (§4.3) the fingerprinting engine
    compares between faulty and fault-free runs. *)

type t =
  | EIO
  | ENOENT
  | ENOSPC
  | ENOTDIR
  | EISDIR
  | EEXIST
  | ENOTEMPTY
  | EROFS
  | EFBIG
  | ENAMETOOLONG
  | EBADF
  | EINVAL
  | ENFILE
  | ELOOP
  | EUCLEAN  (** structure needs cleaning: a failed sanity check *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
