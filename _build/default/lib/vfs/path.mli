(** Path syntax helpers shared by all file-system implementations. *)

val max_name : int
(** Longest permitted component (255, as in ext3). *)

val split : string -> string list
(** ["/a/b//c"] becomes [["a"; "b"; "c"]]; ["/"] becomes []. Relative
    paths split the same way (the caller decides the starting inode). *)

val is_absolute : string -> bool

val dirname_basename : string -> string * string
(** [dirname_basename "/a/b/c"] is [("/a/b", "c")];
    [dirname_basename "/x"] is [("/", "x")]; relative paths keep a
    relative dirname: [dirname_basename "x"] is [(".", "x")]. *)

val validate_component : string -> (unit, Errno.t) result
(** Rejects empty names, names over {!max_name} and names containing
    ['/'] or ['\000']. *)

val join : string -> string -> string
