type 'a t = { table : (int, 'a) Hashtbl.t; mutable next : int }

let create () = { table = Hashtbl.create 16; next = 3 }

let alloc t v =
  let fd = t.next in
  t.next <- fd + 1;
  Hashtbl.replace t.table fd v;
  fd

let find t fd =
  match Hashtbl.find_opt t.table fd with
  | Some v -> Ok v
  | None -> Error Errno.EBADF

let close t fd =
  if Hashtbl.mem t.table fd then begin
    Hashtbl.remove t.table fd;
    Ok ()
  end
  else Error Errno.EBADF

let iter t f = Hashtbl.iter (fun fd v -> f fd v) t.table
