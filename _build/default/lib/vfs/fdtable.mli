(** A per-mount file-descriptor table, shared by all the file-system
    models. Descriptors are small ints starting at 3. *)

type 'a t

val create : unit -> 'a t
val alloc : 'a t -> 'a -> Fs.fd
val find : 'a t -> Fs.fd -> ('a, Errno.t) result
(** [Error EBADF] for unknown descriptors. *)

val close : 'a t -> Fs.fd -> (unit, Errno.t) result
val iter : 'a t -> (Fs.fd -> 'a -> unit) -> unit
