lib/vfs/fdtable.mli: Errno Fs
