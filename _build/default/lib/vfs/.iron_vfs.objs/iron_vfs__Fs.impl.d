lib/vfs/fs.ml: Errno Iron_disk Klog
