lib/vfs/klog.mli: Format
