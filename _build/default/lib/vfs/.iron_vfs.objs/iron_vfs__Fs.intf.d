lib/vfs/fs.mli: Errno Iron_disk Klog
