lib/vfs/klog.ml: Format List
