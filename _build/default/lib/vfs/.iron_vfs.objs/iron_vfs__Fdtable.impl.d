lib/vfs/fdtable.ml: Errno Hashtbl
