lib/vfs/resolver.ml: Errno Fs Path Result
