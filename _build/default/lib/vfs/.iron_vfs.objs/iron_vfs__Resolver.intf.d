lib/vfs/resolver.mli: Errno Fs
