type kind = Regular | Directory | Symlink

let kind_to_string = function
  | Regular -> "file"
  | Directory -> "dir"
  | Symlink -> "symlink"

type stat = {
  st_ino : int;
  st_kind : kind;
  st_size : int;
  st_links : int;
  st_mode : int;
  st_uid : int;
  st_gid : int;
  st_atime : float;
  st_mtime : float;
  st_ctime : float;
}

type statfs = {
  f_blocks : int;
  f_bfree : int;
  f_files : int;
  f_ffree : int;
  f_bsize : int;
}

type open_mode = Rd | Wr | Rdwr
type fd = int

module type S = sig
  val fs_name : string
  val block_types : string list
  val classifier : (int -> bytes) -> int -> string
  val corrupt_field : string -> (bytes -> unit) option

  type t

  val mkfs : Iron_disk.Dev.t -> (unit, Errno.t) result
  val mount : Iron_disk.Dev.t -> (t, Errno.t) result
  val unmount : t -> (unit, Errno.t) result
  val klog : t -> Klog.t
  val is_readonly : t -> bool
  val access : t -> string -> (unit, Errno.t) result
  val chdir : t -> string -> (unit, Errno.t) result
  val chroot : t -> string -> (unit, Errno.t) result
  val stat : t -> string -> (stat, Errno.t) result
  val lstat : t -> string -> (stat, Errno.t) result
  val statfs : t -> (statfs, Errno.t) result
  val open_ : t -> string -> open_mode -> (fd, Errno.t) result
  val close : t -> fd -> (unit, Errno.t) result
  val creat : t -> string -> (fd, Errno.t) result
  val read : t -> fd -> off:int -> len:int -> (bytes, Errno.t) result
  val write : t -> fd -> off:int -> bytes -> (int, Errno.t) result
  val readlink : t -> string -> (string, Errno.t) result
  val getdirentries : t -> string -> ((string * int) list, Errno.t) result
  val link : t -> string -> string -> (unit, Errno.t) result
  val symlink : t -> string -> string -> (unit, Errno.t) result
  val mkdir : t -> string -> (unit, Errno.t) result
  val rmdir : t -> string -> (unit, Errno.t) result
  val unlink : t -> string -> (unit, Errno.t) result
  val rename : t -> string -> string -> (unit, Errno.t) result
  val truncate : t -> string -> int -> (unit, Errno.t) result
  val chmod : t -> string -> int -> (unit, Errno.t) result
  val chown : t -> string -> int -> int -> (unit, Errno.t) result
  val utimes : t -> string -> float -> float -> (unit, Errno.t) result
  val fsync : t -> fd -> (unit, Errno.t) result
  val sync : t -> (unit, Errno.t) result
end

type boxed = Boxed : (module S with type t = 'a) * 'a -> boxed
type brand = Brand : (module S with type t = 'a) -> brand

let brand_name (Brand (module F)) = F.fs_name
let brand_block_types (Brand (module F)) = F.block_types
let mkfs (Brand (module F)) dev = F.mkfs dev

let mount (Brand (module F)) dev =
  match F.mount dev with
  | Ok t -> Ok (Boxed ((module F), t))
  | Error e -> Error e
