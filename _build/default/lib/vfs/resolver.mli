(** Generic path resolution over an abstract inode/object store.

    Every file-system model supplies three callbacks and gets POSIX path
    walking (symlink following with a loop bound, cwd/root handling,
    ENOTDIR checks) for free. *)

type ops = {
  lookup : int -> string -> (int, Errno.t) result;
      (** child of a directory object by name *)
  kind_of : int -> (Fs.kind, Errno.t) result;
  readlink_of : int -> (string, Errno.t) result;
}

val max_symlink_depth : int

val resolve :
  ops -> root:int -> cwd:int -> ?follow_last:bool -> string -> (int, Errno.t) result

val resolve_parent :
  ops -> root:int -> cwd:int -> string -> (int * string, Errno.t) result
(** Parent directory object and final component name. Validates the
    component. *)
