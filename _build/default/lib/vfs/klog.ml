type level = Info | Warning | Error
type entry = { level : level; subsystem : string; message : string }
type t = { mutable entries : entry list (* newest first *) }

exception Panic of string

let create () = { entries = [] }

let log t level subsystem fmt =
  Format.kasprintf
    (fun message -> t.entries <- { level; subsystem; message } :: t.entries)
    fmt

let info t sub fmt = log t Info sub fmt
let warn t sub fmt = log t Warning sub fmt
let error t sub fmt = log t Error sub fmt

let panic t subsystem fmt =
  Format.kasprintf
    (fun message ->
      t.entries <- { level = Error; subsystem; message } :: t.entries;
      raise (Panic (subsystem ^ ": " ^ message)))
    fmt

let entries t = List.rev t.entries
let errors t = List.rev (List.filter (fun e -> e.level = Error) t.entries)
let clear t = t.entries <- []

let pp_entry fmt e =
  let lvl =
    match e.level with Info -> "info" | Warning -> "warn" | Error -> "ERROR"
  in
  Format.fprintf fmt "[%s] %s: %s" lvl e.subsystem e.message
