let max_name = 255

let split p = String.split_on_char '/' p |> List.filter (fun s -> s <> "")

let is_absolute p = String.length p > 0 && p.[0] = '/'

let dirname_basename p =
  match List.rev (split p) with
  | [] -> ("/", "")
  | base :: rev_dir ->
      let dir =
        match rev_dir with
        | [] -> if is_absolute p then "/" else "."
        | _ ->
            let joined = String.concat "/" (List.rev rev_dir) in
            if is_absolute p then "/" ^ joined else joined
      in
      (dir, base)

let validate_component name =
  if name = "" then Error Errno.ENOENT
  else if String.length name > max_name then Error Errno.ENAMETOOLONG
  else if String.contains name '/' || String.contains name '\000' then
    Error Errno.EINVAL
  else Ok ()

let join dir name = if dir = "/" then "/" ^ name else dir ^ "/" ^ name
