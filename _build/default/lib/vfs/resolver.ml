let ( let* ) = Result.bind

type ops = {
  lookup : int -> string -> (int, Errno.t) result;
  kind_of : int -> (Fs.kind, Errno.t) result;
  readlink_of : int -> (string, Errno.t) result;
}

let max_symlink_depth = 8

let resolve ops ~root ~cwd ?(follow_last = true) path =
  let rec walk dir components depth =
    if depth > max_symlink_depth then Error Errno.ELOOP
    else
      match components with
      | [] -> Ok dir
      | name :: rest -> (
          let* () = Path.validate_component name in
          let* dkind = ops.kind_of dir in
          match dkind with
          | Fs.Regular | Fs.Symlink -> Error Errno.ENOTDIR
          | Fs.Directory -> (
              let* child = ops.lookup dir name in
              let* ckind = ops.kind_of child in
              match ckind with
              | Fs.Symlink when rest <> [] || follow_last ->
                  let* target = ops.readlink_of child in
                  let start = if Path.is_absolute target then root else dir in
                  let* mid = walk start (Path.split target) (depth + 1) in
                  walk mid rest (depth + 1)
              | Fs.Regular | Fs.Directory | Fs.Symlink -> walk child rest depth))
  in
  let start = if Path.is_absolute path then root else cwd in
  walk start (Path.split path) 0

let resolve_parent ops ~root ~cwd path =
  let dir, base = Path.dirname_basename path in
  if base = "" then Error Errno.EINVAL
  else
    let* () = Path.validate_component base in
    let* dino = resolve ops ~root ~cwd dir in
    Ok (dino, base)
