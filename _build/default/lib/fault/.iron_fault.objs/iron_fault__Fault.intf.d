lib/fault/fault.mli: Format Iron_disk
