lib/fault/fault.ml: Bytes Char Format Iron_disk Iron_util List
