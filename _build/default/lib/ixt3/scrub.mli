(** Disk scrubbing: eager detection (§3.2).

    The paper argues IRON file systems should pair lazy (on-access)
    detection with eager scans that discover latent sector errors and
    corruption before an application trips over them — valuable exactly
    when redundancy still exists to repair from. [run] scans an
    unmounted ixt3 volume:

    - every block is read once; read failures are latent sector errors;
    - blocks covered by checksums (per the volume's feature set) are
      verified; mismatches are silent corruption, discovered eagerly;
    - damaged metadata is repaired from its replica, damaged data from
      the file's parity group, where those features are enabled. *)

type report = {
  scanned : int;
  latent_errors : int;  (** unreadable blocks found *)
  corrupt : int;  (** checksum mismatches found *)
  repaired : int;  (** written back whole from replica or parity *)
  unrecoverable : int;  (** damage with no surviving redundancy *)
}

val pp_report : Format.formatter -> report -> unit

val run :
  ?passes:int ->
  Iron_ext3.Profile.t ->
  Iron_disk.Dev.t ->
  (report, Iron_vfs.Errno.t) result
(** Scrub the volume below [dev]. The profile says which redundancy the
    volume carries. The volume must not be mounted.

    Runs up to [passes] (default 3) sweeps, stopping early once a sweep
    repairs nothing: repairing one structure (say an inode-table block)
    can unlock the redundancy needed to repair another (a data block
    whose parity group that table describes). [latent_errors] and
    [corrupt] report the first sweep's discoveries; [repaired] is
    cumulative; [unrecoverable] is what the final sweep still could not
    fix. *)
