(** ixt3 — the IRON ext3 family (§6).

    Thin assembly over {!Iron_ext3}: pick a feature combination and get
    a mountable {!Iron_vfs.Fs.brand}. The five features are the paper's
    Mc (metadata checksums), Mr (metadata replication), Dc (data
    checksums), Dp (per-file data parity) and Tc (transactional
    checksums); Table 6 evaluates all 32 combinations. *)

val brand :
  ?mc:bool -> ?mr:bool -> ?dc:bool -> ?dp:bool -> ?tc:bool -> ?rm:bool ->
  unit -> Iron_vfs.Fs.brand
(** Defaults: all features off (but ext3's failure-handling bugs
    fixed, as in the paper's prototype). [rm] enables the beyond-paper
    RRemap extension: failed data writes relocate to a fresh block. *)

val full : Iron_vfs.Fs.brand
(** Everything on — the configuration fingerprinted in Figure 3. *)

val all_variants : (Iron_ext3.Profile.t * Iron_vfs.Fs.brand) list
(** The 32 feature combinations in Table 6's row order: the feature
    bits count up with Mc as the most significant. *)
