lib/ixt3/ixt3.mli: Iron_ext3 Iron_vfs
