lib/ixt3/scrub.mli: Format Iron_disk Iron_ext3 Iron_vfs
