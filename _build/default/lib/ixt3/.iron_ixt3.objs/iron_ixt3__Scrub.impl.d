lib/ixt3/scrub.ml: Array Bytes Char Codec Format Hashtbl Iron_disk Iron_ext3 Iron_util Iron_vfs List Result Sha1 String
