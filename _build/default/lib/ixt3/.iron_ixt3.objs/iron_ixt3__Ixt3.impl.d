lib/ixt3/ixt3.ml: Iron_ext3 List
