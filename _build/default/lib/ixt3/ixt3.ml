module Profile = Iron_ext3.Profile

let brand ?(mc = false) ?(mr = false) ?(dc = false) ?(dp = false) ?(tc = false)
    ?(rm = false) () =
  Iron_ext3.Ext3.brand (Profile.ixt3_with ~mc ~mr ~dc ~dp ~tc ~rm ())

let full = Iron_ext3.Ext3.ixt3

(* Table 6 enumerates combinations with Mc varying slowest, matching the
   paper's row layout (row 1 = Mc, row 2 = Mr, row 3 = Dc, ...). *)
let all_variants =
  let bit n i = n land (1 lsl i) <> 0 in
  List.init 32 (fun n ->
      let mc = bit n 4
      and mr = bit n 3
      and dc = bit n 2
      and dp = bit n 1
      and tc = bit n 0 in
      let p = Profile.ixt3_with ~mc ~mr ~dc ~dp ~tc () in
      (p, Iron_ext3.Ext3.brand p))
