lib/workloads/apps.ml: Bytes Char Hashtbl Iron_util Iron_vfs List Printf Result
