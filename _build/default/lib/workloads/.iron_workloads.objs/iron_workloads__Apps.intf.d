lib/workloads/apps.mli: Iron_util Iron_vfs
