lib/workloads/space.ml: Bytes Format Hashtbl Iron_disk Iron_ext3 Iron_ixt3 Iron_util Iron_vfs List Printf
