lib/workloads/space.mli: Format
