lib/workloads/table6.ml: Apps Format Iron_ext3 Iron_ixt3 Iron_vfs List Printf Runner
