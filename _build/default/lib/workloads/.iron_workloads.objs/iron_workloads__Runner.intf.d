lib/workloads/runner.mli: Apps Iron_vfs
