lib/workloads/table6.mli: Format
