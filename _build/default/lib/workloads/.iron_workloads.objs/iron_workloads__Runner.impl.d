lib/workloads/runner.ml: Apps Iron_disk Iron_util Iron_vfs Result
