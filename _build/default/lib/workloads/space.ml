module Memdisk = Iron_disk.Memdisk
module Fs = Iron_vfs.Fs
module Layout = Iron_ext3.Layout
module Prng = Iron_util.Prng

type row = {
  profile : string;
  files : int;
  mean_file_kb : float;
  meta_pct : float;
  parity_pct : float;
}

(* File-size mixes loosely mirroring the volumes the paper sampled:
   mostly-small office trees, a mixed home directory, and a
   media-heavy volume of large files. *)
let profiles =
  [
    ("office (small files)", 90, fun rng -> 4096 + Prng.int rng (24 * 1024));
    ("home (mixed)", 50, fun rng -> 8192 + Prng.int rng (100 * 1024));
    ("media (large files)", 18, fun rng -> 131072 + Prng.int rng (300 * 1024));
  ]

let measure_one ~num_blocks (name, nfiles, size_of) =
  let disk =
    Memdisk.create
      ~params:{ Memdisk.default_params with Memdisk.num_blocks; seed = 7 }
      ()
  in
  Memdisk.set_time_model disk false;
  let dev = Memdisk.dev disk in
  let brand = Iron_ixt3.Ixt3.full in
  (match Fs.mkfs brand dev with Ok () -> () | Error _ -> failwith "space: mkfs");
  let (Fs.Boxed ((module F), t)) =
    match Fs.mount brand dev with Ok b -> b | Error _ -> failwith "space: mount"
  in
  let rng = Prng.create 0x5AACE in
  let total_bytes = ref 0 in
  for i = 0 to nfiles - 1 do
    let size = size_of rng in
    total_bytes := !total_bytes + size;
    let fd = match F.creat t (Printf.sprintf "/f%d" i) with Ok fd -> fd | Error _ -> failwith "creat" in
    let data = Bytes.create size in
    Prng.fill_bytes rng data;
    (match F.write t fd ~off:0 data with Ok _ -> () | Error _ -> failwith "write");
    ignore (F.close t fd)
  done;
  (match F.sync t with Ok () -> () | Error _ -> failwith "sync");
  (match F.unmount t with Ok () -> () | Error _ -> failwith "unmount");
  (* Inspect the image. *)
  let lay = Layout.compute ~block_size:4096 ~num_blocks in
  let classify = Iron_ext3.Classifier.classify (Memdisk.peek disk) in
  let count label =
    let n = ref 0 in
    for b = 0 to num_blocks - 1 do
      if classify b = label then incr n
    done;
    !n
  in
  let parity_blocks = count "parity" in
  let shadow_blocks = count "replica" - lay.Layout.replica_blocks in
  let data_blocks = count "data" in
  let dir_blocks = count "dir" in
  let indirect_blocks = count "indirect" in
  (* Base space: what a non-IRON volume would consume for the same
     content (data + live metadata structures). *)
  let static_meta =
    2 (* super + gdesc *)
    + (lay.Layout.ngroups * (3 + lay.Layout.itable_blocks))
  in
  let base =
    data_blocks + dir_blocks + indirect_blocks + static_meta
  in
  (* The checksum / rmap / replica regions are statically sized for the
     whole device; the paper measured full volumes, so charge only the
     part serving live content: 20 bytes of checksum per used block, a
     replica per live metadata block, an rmap slot per shadow. *)
  let groups_in_use =
    let used = Hashtbl.create 8 in
    for b = 0 to num_blocks - 1 do
      match classify b with
      | "data" | "dir" | "indirect" | "parity" -> (
          match Layout.group_of_block lay b with
          | Some g -> Hashtbl.replace used g ()
          | None -> ())
      | _ -> ()
    done;
    max 1 (Hashtbl.length used)
  in
  let cksum_used = ((base + parity_blocks) * 20 / 4096) + 1 in
  let used_itable = ((nfiles + 2 + lay.Layout.inodes_per_block - 1)
                     / lay.Layout.inodes_per_block) in
  let replica_used = 1 + (groups_in_use * 2) + used_itable in
  let rmap_used = (max 0 shadow_blocks * 4 / 4096) + 1 in
  let meta_redundant =
    cksum_used + rmap_used + replica_used + max 0 shadow_blocks
  in
  let pct n = 100.0 *. float_of_int n /. float_of_int base in
  {
    profile = name;
    files = nfiles;
    mean_file_kb = float_of_int !total_bytes /. float_of_int nfiles /. 1024.;
    meta_pct = pct meta_redundant;
    parity_pct = pct parity_blocks;
  }

let measure ?(num_blocks = 4096) () =
  List.map (measure_one ~num_blocks) profiles

let pp fmt rows =
  Format.fprintf fmt "Space overheads of ixt3 redundancy (%%%% of used space):@.";
  Format.fprintf fmt "%-22s %6s %10s %12s %12s@." "volume profile" "files"
    "mean KB" "meta+cksum" "parity";
  List.iter
    (fun r ->
      Format.fprintf fmt "%-22s %6d %10.1f %11.1f%% %11.1f%%@." r.profile r.files
        r.mean_file_kb r.meta_pct r.parity_pct)
    rows
