(** The four Table-6 application workloads (§6.2), scaled to the
    simulated volume.

    - {b SSH-Build}: unpack a source tree, "configure", "compile" —
      reads of every source, object files written, a final link;
      a developer's day in miniature.
    - {b Web}: a read-intensive static server; a document set is
      published once, then served many times with a skewed popularity
      distribution.
    - {b PostMark}: the mail-server churn benchmark — a pool of small
      files hit with create/delete/read/append transactions.
    - {b TPC-B}: debit-credit: random in-place updates of an account
      file, each followed by fsync; synchronous, commit-latency-bound
      (where transactional checksums pay off).

    All draw randomness from an explicit {!Iron_util.Prng.t}: same seed,
    same I/O. *)

type t = {
  name : string;
  setup : Iron_vfs.Fs.boxed -> Iron_util.Prng.t -> (unit, Iron_vfs.Errno.t) result;
      (** Untimed preparation (publishing the document set, creating the
          account file, seeding the mail pool). *)
  run : Iron_vfs.Fs.boxed -> Iron_util.Prng.t -> (unit, Iron_vfs.Errno.t) result;
      (** The measured phase. *)
  cpu_ms : float;
      (** Non-I/O time of the measured phase (compilation for
          SSH-Build, request handling for the web server); the paper's
          SSH and web numbers are compute-dominated, which is exactly
          why their Table-6 overheads stay near 1.00. Disk-bound
          workloads (PostMark, TPC-B) carry 0 here. *)
}

val ssh_build : t
val web : t
val postmark : t
val tpcb : t
val all : t list

val tpcb_batched : int -> t
(** TPC-B variant committing every [n] transactions, for the
    transactional-checksum ablation. *)
