(** Space overheads of the ixt3 redundancy machinery (§6.2).

    The paper measured local volumes and computed the growth from
    metadata replication + checksums (3–10%) and from one parity block
    per user file (3–17%, depending on the volume's file-size mix). We
    populate volumes with three synthetic file-size profiles and compute
    the same two numbers from the resulting images. *)

type row = {
  profile : string;
  files : int;
  mean_file_kb : float;
  meta_pct : float;  (** checksums + replica machinery, % of used space *)
  parity_pct : float;  (** parity blocks, % of used space *)
}

val measure : ?num_blocks:int -> unit -> row list
val pp : Format.formatter -> row list -> unit
