module Fs = Iron_vfs.Fs
module Errno = Iron_vfs.Errno
module Prng = Iron_util.Prng

let ( let* ) = Result.bind

type t = {
  name : string;
  setup : Fs.boxed -> Prng.t -> (unit, Errno.t) result;
  run : Fs.boxed -> Prng.t -> (unit, Errno.t) result;
  cpu_ms : float;
}

let bs = 4096

let content rng n =
  let b = Bytes.create n in
  Prng.fill_bytes rng b;
  Bytes.unsafe_to_string b

let put (Fs.Boxed ((module F), t)) path data =
  let* fd = F.creat t path in
  let* _ = F.write t fd ~off:0 (Bytes.of_string data) in
  F.close t fd

let read_all (Fs.Boxed ((module F), t)) path =
  let* fd = F.open_ t path Fs.Rd in
  let* st = F.stat t path in
  let* _ = F.read t fd ~off:0 ~len:st.Fs.st_size in
  F.close t fd

let rec fold_range lo hi acc f =
  if lo >= hi then Ok acc
  else
    let* acc = f acc lo in
    fold_range (lo + 1) hi acc f

let iter_range lo hi f = fold_range lo hi () (fun () i -> f i)

(* --- SSH-Build -------------------------------------------------------- *)

let ssh_build =
  {
    name = "SSH-Build";
    cpu_ms = 8000.0 (* compiling dominates a build *);
    setup = (fun _ _ -> Ok ());
    run =
      (fun (Fs.Boxed ((module F), t) as fs) rng ->
        let dirs = 8 and files_per_dir = 8 in
        (* Unpack: the source tree. *)
        let* () = F.mkdir t "/ssh" in
        let* () =
          iter_range 0 dirs (fun d ->
              let dir = Printf.sprintf "/ssh/dir%d" d in
              let* () = F.mkdir t dir in
              iter_range 0 files_per_dir (fun f ->
                  let size = 1024 + Prng.int rng (6 * 1024) in
                  put fs (Printf.sprintf "%s/src%d.c" dir f) (content rng size)))
        in
        (* Configure: probe every source, write small outputs. *)
        let* () =
          iter_range 0 dirs (fun d ->
              let dir = Printf.sprintf "/ssh/dir%d" d in
              iter_range 0 files_per_dir (fun f ->
                  let* _ = F.stat t (Printf.sprintf "%s/src%d.c" dir f) in
                  read_all fs (Printf.sprintf "%s/src%d.c" dir f)))
        in
        let* () = put fs "/ssh/config.h" (content rng 2048) in
        (* Build: read sources, emit objects, link. *)
        let* () =
          iter_range 0 dirs (fun d ->
              let dir = Printf.sprintf "/ssh/dir%d" d in
              iter_range 0 files_per_dir (fun f ->
                  let* () = read_all fs (Printf.sprintf "%s/src%d.c" dir f) in
                  let osize = 2048 + Prng.int rng (8 * 1024) in
                  put fs (Printf.sprintf "%s/obj%d.o" dir f) (content rng osize)))
        in
        let* () = put fs "/ssh/sshd" (content rng (192 * 1024)) in
        F.sync t);
  }

(* --- Web server ------------------------------------------------------- *)

let web_ndocs = 60

let web =
  {
    name = "Web";
    cpu_ms = 20000.0 (* request handling and the network dominate *);
    setup =
      (fun (Fs.Boxed ((module F), t) as fs) rng ->
        let* () = F.mkdir t "/htdocs" in
        let* () =
          iter_range 0 web_ndocs (fun d ->
              let size = 16384 + Prng.int rng (96 * 1024) in
              put fs (Printf.sprintf "/htdocs/page%d.html" d) (content rng size))
        in
        F.sync t);
    run =
      (fun fs rng ->
        (* 600 GETs with a popularity skew: most hits on a hot subset. *)
        iter_range 0 400 (fun _ ->
            let d =
              if Prng.int rng 100 < 70 then Prng.int rng 8
              else Prng.int rng web_ndocs
            in
            read_all fs (Printf.sprintf "/htdocs/page%d.html" d)));
  }

(* --- PostMark --------------------------------------------------------- *)

let pm_pool = 40
let pm_subdirs = 10
let pm_path i = Printf.sprintf "/mail/s%d/f%d" (i mod pm_subdirs) i

let postmark =
  {
    name = "PostMark";
    cpu_ms = 0.0;
    setup =
      (fun (Fs.Boxed ((module F), t) as fs) rng ->
        let* () = F.mkdir t "/mail" in
        let* () =
          iter_range 0 pm_subdirs (fun d -> F.mkdir t (Printf.sprintf "/mail/s%d" d))
        in
        let* () =
          iter_range 0 pm_pool (fun i ->
              let size = 4096 + Prng.int rng (28 * 1024) in
              put fs (pm_path i) (content rng size))
        in
        F.sync t);
    run =
      (fun (Fs.Boxed ((module F), t) as fs) rng ->
        let txns = 300 in
        let path = pm_path in
        let live = Hashtbl.create 64 in
        for i = 0 to pm_pool - 1 do
          Hashtbl.replace live i ()
        done;
        let next = ref pm_pool in
        let pick () =
          let keys = Hashtbl.fold (fun k () acc -> k :: acc) live [] in
          match keys with [] -> None | _ -> Some (List.nth keys (Prng.int rng (List.length keys)))
        in
        let* () =
          iter_range 0 txns (fun n ->
              let* () =
                match Prng.int rng 4 with
                | 0 ->
                    (* create *)
                    let i = !next in
                    incr next;
                    let size = 4096 + Prng.int rng (28 * 1024) in
                    let* () = put fs (path i) (content rng size) in
                    Hashtbl.replace live i ();
                    Ok ()
                | 1 -> (
                    (* delete *)
                    match pick () with
                    | None -> Ok ()
                    | Some i ->
                        Hashtbl.remove live i;
                        F.unlink t (path i))
                | 2 -> (
                    (* read *)
                    match pick () with
                    | None -> Ok ()
                    | Some i -> read_all fs (path i))
                | _ -> (
                    (* append *)
                    match pick () with
                    | None -> Ok ()
                    | Some i ->
                        let* st = F.stat t (path i) in
                        let* fd = F.open_ t (path i) Fs.Wr in
                        let chunk = content rng (512 + Prng.int rng 4096) in
                        let* _ =
                          F.write t fd ~off:st.Fs.st_size (Bytes.of_string chunk)
                        in
                        F.close t fd)
              in
              if n mod 100 = 99 then F.sync t else Ok ())
        in
        F.sync t);
  }

(* --- TPC-B ------------------------------------------------------------ *)

(* Large enough that random account reads miss the cache, as they would
   against a real database file. *)
let tpcb_accounts_blocks = 1600

let tpcb_with ~commit_every =
  {
    name =
      (if commit_every = 1 then "TPC-B"
       else Printf.sprintf "TPC-B(batch=%d)" commit_every);
    cpu_ms = 0.0;
    setup =
      (fun (Fs.Boxed ((module F), t) as fs) rng ->
        let* () = put fs "/accounts" (content rng (tpcb_accounts_blocks * bs)) in
        let* () = put fs "/history" "" in
        F.sync t);
    run =
      (fun (Fs.Boxed ((module F), t)) rng ->
        let accounts_blocks = tpcb_accounts_blocks in
        let* afd = F.open_ t "/accounts" Fs.Rdwr in
        let* hfd = F.open_ t "/history" Fs.Wr in
        let* () =
          iter_range 0 200 (fun n ->
              (* read-modify-write a random account record *)
              let blk = Prng.int rng accounts_blocks in
              let off = (blk * bs) + (Prng.int rng 40 * 100) in
              let* record = F.read t afd ~off ~len:100 in
              let record = if Bytes.length record < 100 then Bytes.make 100 'a' else record in
              Bytes.set record 0 (Char.chr (n land 0xFF));
              let* _ = F.write t afd ~off record in
              (* append to the history file *)
              let* hst = F.stat t "/history" in
              let* _ =
                F.write t hfd ~off:hst.Fs.st_size (Bytes.of_string (content rng 50))
              in
              if n mod commit_every = commit_every - 1 then F.fsync t afd else Ok ())
        in
        let* () = F.close t afd in
        let* () = F.close t hfd in
        F.sync t);
  }

let tpcb = tpcb_with ~commit_every:1
let tpcb_batched n = tpcb_with ~commit_every:(max 1 n)
let all = [ ssh_build; web; postmark; tpcb ]
