module Memdisk = Iron_disk.Memdisk
module Fs = Iron_vfs.Fs

let ( let* ) = Result.bind

type stats = {
  elapsed_ms : float;
  reads : int;
  writes : int;
  syncs : int;
}

let run ?(num_blocks = 4096) ?(seed = 42) brand (app : Apps.t) =
  let disk =
    Memdisk.create
      ~params:{ Memdisk.default_params with Memdisk.num_blocks; seed }
      ()
  in
  let dev = Memdisk.dev disk in
  (* Setup is untimed: Table 6 measures the workloads, not mkfs. *)
  Memdisk.set_time_model disk false;
  let* () = Fs.mkfs brand dev in
  let* (Fs.Boxed ((module F), t)) = Fs.mount brand dev in
  let rng = Iron_util.Prng.create (seed lxor 0xBE7C4) in
  let* () = app.Apps.setup (Fs.Boxed ((module F), t)) rng in
  Memdisk.reset_stats disk;
  Memdisk.set_time_model disk true;
  let* () = app.Apps.run (Fs.Boxed ((module F), t)) rng in
  let* () = F.unmount t in
  let s = Memdisk.stats disk in
  Ok
    {
      elapsed_ms = s.Memdisk.elapsed_ms +. app.Apps.cpu_ms;
      reads = s.Memdisk.reads;
      writes = s.Memdisk.writes;
      syncs = s.Memdisk.syncs;
    }
