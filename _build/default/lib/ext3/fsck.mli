(** Offline consistency checking and repair for ext3/ixt3 volumes — the
    RRepair level of the taxonomy (§3.3: "a block that is not pointed
    to, but is marked as allocated in a bitmap, could be freed"), and
    the paper's point that even journaling file systems benefit from
    periodic full-scan integrity checks (§3.1).

    The checker cross-validates:
    - the block bitmaps against the blocks actually reachable from live
      inodes (leaked and doubly-allocated blocks);
    - the inode bitmaps against inode kinds (orphaned/phantom inodes);
    - directory entries against their target inodes (dangling entries);
    - link counts against the number of directory entries referencing
      each inode;
    - inode sizes against the addressable maximum.

    With [repair:true] it rewrites bitmaps and link counts to match
    reality and drops dangling entries. The volume must not be mounted. *)

type finding = {
  severity : [ `Error | `Warning ];
  message : string;
  repaired : bool;
}

type report = {
  findings : finding list;
  clean : bool;  (** no errors found (warnings allowed) *)
}

val pp_report : Format.formatter -> report -> unit

val run :
  ?repair:bool -> Iron_disk.Dev.t -> (report, Iron_vfs.Errno.t) result
(** Default [repair:false]: check only. *)
