open Iron_util
module Path = Iron_vfs.Path

let entry_size name = 4 + 2 + String.length name

let decode buf =
  let r = Codec.reader buf in
  let rec go acc =
    if Codec.remaining r < 6 then List.rev acc
    else
      let ino = Codec.get_u32 r in
      if ino = 0 then List.rev acc
      else
        let len = Codec.get_u16 r in
        if len = 0 || len > Path.max_name || len > Codec.remaining r then
          List.rev acc
        else
          let name = Codec.get_string r len in
          go ((name, ino) :: acc)
  in
  go []

let fits block_size entries =
  let total = List.fold_left (fun a (n, _) -> a + entry_size n) 0 entries in
  total + 4 <= block_size

let encode buf entries =
  Bytes.fill buf 0 (Bytes.length buf) '\000';
  let w = Codec.writer buf in
  let rec go = function
    | [] -> true
    | (name, ino) :: rest ->
        if Codec.writer_pos w + entry_size name + 4 > Bytes.length buf then false
        else begin
          Codec.put_u32 w ino;
          Codec.put_u16 w (String.length name);
          Codec.put_string w name;
          go rest
        end
  in
  go entries
