(** Gray-box block-type oracle for ext3 volumes (§4.2).

    Given raw access to the medium, labels every block with one of the
    paper's thirteen ext3 block types (Table 4) — plus ["cksum"],
    ["replica"] and ["parity"] for the ixt3 regions, and ["?"] for
    blocks whose role cannot be determined (e.g. free data blocks).

    The walk is defensive: it decodes whatever is on disk and never
    raises, since it is also used on deliberately corrupted images. *)

val block_types : string list
(** The thirteen Figure-2 row labels, in paper order. *)

val classify : (int -> bytes) -> int -> string

val corrupt_field : string -> (bytes -> unit) option
(** Type-aware "plausible but wrong" corruptions per block type. *)
