open Iron_util

type kind = Free | Regular | Directory | Symlink

type t = {
  kind : kind;
  links : int;
  uid : int;
  gid : int;
  perms : int;
  size : int;
  atime : int;
  mtime : int;
  ctime : int;
  nblocks : int;
  direct : int array;
  ind : int;
  dind : int;
  tind : int;
  parity : int;
  symlink_target : string;
}

let kind_code = function Free -> 0 | Regular -> 1 | Directory -> 2 | Symlink -> 3

let kind_of_code = function
  | 1 -> Regular
  | 2 -> Directory
  | 3 -> Symlink
  | _ -> Free

let empty lay =
  {
    kind = Free;
    links = 0;
    uid = 0;
    gid = 0;
    perms = 0;
    size = 0;
    atime = 0;
    mtime = 0;
    ctime = 0;
    nblocks = 0;
    direct = Array.make lay.Layout.direct_ptrs 0;
    ind = 0;
    dind = 0;
    tind = 0;
    parity = 0;
    symlink_target = "";
  }

let fresh lay kind ~perms ~time =
  {
    (empty lay) with
    kind;
    links = 1;
    perms;
    atime = time;
    mtime = time;
    ctime = time;
  }

let max_symlink = 48

let encode lay t buf off =
  let w = Codec.writer ~pos:off buf in
  Codec.put_u8 w (kind_code t.kind);
  Codec.put_u8 w 0;
  Codec.put_u16 w t.links;
  Codec.put_u16 w t.uid;
  Codec.put_u16 w t.gid;
  Codec.put_u16 w t.perms;
  Codec.put_u16 w 0;
  Codec.put_u32 w t.size;
  Codec.put_u32 w t.atime;
  Codec.put_u32 w t.mtime;
  Codec.put_u32 w t.ctime;
  Codec.put_u32 w t.nblocks;
  Array.iter (Codec.put_u32 w) t.direct;
  Codec.put_u32 w t.ind;
  Codec.put_u32 w t.dind;
  Codec.put_u32 w t.tind;
  Codec.put_u32 w t.parity;
  let target =
    if String.length t.symlink_target > max_symlink then
      String.sub t.symlink_target 0 max_symlink
    else t.symlink_target
  in
  Codec.put_u16 w (String.length target);
  Codec.put_string w target;
  (* Zero the remainder of the slot. *)
  let used = Codec.writer_pos w - off in
  Bytes.fill buf (off + used) (lay.Layout.inode_size - used) '\000'

let decode lay buf off =
  let r = Codec.reader ~pos:off buf in
  let kind = kind_of_code (Codec.get_u8 r) in
  let _pad = Codec.get_u8 r in
  let links = Codec.get_u16 r in
  let uid = Codec.get_u16 r in
  let gid = Codec.get_u16 r in
  let perms = Codec.get_u16 r in
  let _pad2 = Codec.get_u16 r in
  let size = Codec.get_u32 r in
  let atime = Codec.get_u32 r in
  let mtime = Codec.get_u32 r in
  let ctime = Codec.get_u32 r in
  let nblocks = Codec.get_u32 r in
  let direct = Array.init lay.Layout.direct_ptrs (fun _ -> Codec.get_u32 r) in
  let ind = Codec.get_u32 r in
  let dind = Codec.get_u32 r in
  let tind = Codec.get_u32 r in
  let parity = Codec.get_u32 r in
  let tlen = Codec.get_u16 r in
  let symlink_target =
    if tlen <= max_symlink && tlen <= Codec.remaining r then Codec.get_string r tlen
    else ""
  in
  { kind; links; uid; gid; perms; size; atime; mtime; ctime; nblocks;
    direct; ind; dind; tind; parity; symlink_target }

let max_file_blocks lay =
  let p = lay.Layout.ptrs_per_block in
  lay.Layout.direct_ptrs + p + (p * p) + (p * p * p)
