lib/ext3/classifier.ml: Array Bytes Char Codec Dirent Hashtbl Inode Iron_util Jrec Layout List Sb
