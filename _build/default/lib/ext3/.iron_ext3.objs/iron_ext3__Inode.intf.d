lib/ext3/inode.mli: Layout
