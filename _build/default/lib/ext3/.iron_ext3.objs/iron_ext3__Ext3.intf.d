lib/ext3/ext3.mli: Iron_disk Iron_vfs Layout Profile
