lib/ext3/layout.ml: List
