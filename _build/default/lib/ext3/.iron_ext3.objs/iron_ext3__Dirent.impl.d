lib/ext3/dirent.ml: Bytes Codec Iron_util Iron_vfs List String
