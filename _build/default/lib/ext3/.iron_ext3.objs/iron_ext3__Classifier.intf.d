lib/ext3/classifier.mli:
