lib/ext3/layout.mli:
