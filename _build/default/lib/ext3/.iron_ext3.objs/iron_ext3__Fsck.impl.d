lib/ext3/fsck.ml: Array Bytes Char Codec Dirent Format Hashtbl Inode Iron_disk Iron_util Iron_vfs Layout List Option Printf Result Sb
