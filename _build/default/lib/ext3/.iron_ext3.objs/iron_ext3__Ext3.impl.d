lib/ext3/ext3.ml: Array Bytes Char Classifier Codec Dirent Hashtbl Inode Iron_disk Iron_util Iron_vfs Jrec Layout List Profile Result Sb Sha1 String
