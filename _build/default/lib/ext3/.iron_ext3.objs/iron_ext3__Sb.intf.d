lib/ext3/sb.mli: Iron_vfs Profile
