lib/ext3/profile.ml: List String
