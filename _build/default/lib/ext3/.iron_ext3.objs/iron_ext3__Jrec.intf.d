lib/ext3/jrec.mli: Layout
