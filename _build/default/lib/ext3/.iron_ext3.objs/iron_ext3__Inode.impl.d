lib/ext3/inode.ml: Array Bytes Codec Iron_util Layout String
