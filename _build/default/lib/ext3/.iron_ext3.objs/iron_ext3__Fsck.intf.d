lib/ext3/fsck.mli: Format Iron_disk Iron_vfs
