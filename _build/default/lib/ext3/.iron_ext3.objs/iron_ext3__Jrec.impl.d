lib/ext3/jrec.ml: Bytes Codec Iron_util Layout List
