lib/ext3/sb.ml: Codec Iron_util Iron_vfs Profile
