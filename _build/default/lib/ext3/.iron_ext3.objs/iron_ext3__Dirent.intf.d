lib/ext3/dirent.mli:
