lib/ext3/profile.mli:
