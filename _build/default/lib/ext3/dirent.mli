(** Directory-block codec: a packed sequence of [(ino, name)] records
    terminated by an ino of 0. Directory blocks carry no magic — the
    paper notes ext3 does no type checking on them (§5.1) — so decoding
    garbage yields garbage entries, exactly as on the real system. *)

val decode : bytes -> (string * int) list
(** Stops at the terminator, at the end of the block, or at the first
    structurally impossible record (a name length that overruns). *)

val encode : bytes -> (string * int) list -> bool
(** [encode buf entries] packs as many records as fit plus a
    terminator; returns [false] if not all entries fit ([buf] is left
    with those that did). *)

val fits : int -> (string * int) list -> bool
(** Would these entries (plus terminator) fit in a block of that size? *)

val entry_size : string -> int
