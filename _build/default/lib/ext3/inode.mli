(** 128-byte on-disk inode codec.

    Pointer geometry comes from {!Layout}: [direct] direct pointers,
    then single, double and triple indirect pointers. A block pointer of
    0 means "hole". Symlink targets up to 48 bytes are stored inline
    ("fast symlinks"), so short symlinks occupy no data block — as in
    real ext3. *)

type kind = Free | Regular | Directory | Symlink

type t = {
  kind : kind;
  links : int;
  uid : int;
  gid : int;
  perms : int;
  size : int;
  atime : int;  (** seconds *)
  mtime : int;
  ctime : int;
  nblocks : int;  (** data + indirect blocks charged to the file *)
  direct : int array;  (** length {!Layout.t.direct_ptrs} *)
  ind : int;
  dind : int;
  tind : int;
  parity : int;  (** ixt3 Dp: the file's parity block, 0 if none *)
  symlink_target : string;
}

val empty : Layout.t -> t
val fresh : Layout.t -> kind -> perms:int -> time:int -> t

val encode : Layout.t -> t -> bytes -> int -> unit
(** [encode lay ino buf off] writes the 128-byte image at [off]. *)

val decode : Layout.t -> bytes -> int -> t
(** Total: any 128 bytes decode to {e some} inode — corruption produces
    garbage field values, never an exception. Sanity checking is the
    file system's job, not the codec's. *)

val max_file_blocks : Layout.t -> int
(** Number of data blocks addressable before EFBIG. *)
