(** Superblock codec.

    The superblock records the geometry (so the classifier and a later
    mount can recompute {!Layout.t}), the clean/dirty state, cached free
    counts, and which IRON features the volume was formatted with.
    Stock ext3 writes copies of the superblock into each block group at
    mkfs and never updates them (the paper calls this out as useless
    redundancy, §5.1); ixt3 refreshes the copies at unmount. *)

type state = Clean | Dirty

type t = {
  block_size : int;
  num_blocks : int;
  state : state;
  mount_count : int;
  free_blocks : int;
  free_inodes : int;
  features : int;  (** bit 0 Mc, 1 Dc, 2 Mr, 3 Dp, 4 Tc *)
}

val magic : int

val encode : t -> bytes -> unit
(** Serializes into the beginning of a block-sized buffer. *)

val decode : bytes -> (t, Iron_vfs.Errno.t) result
(** Fails with [EUCLEAN] on a bad magic or impossible geometry. *)

val features_of_profile : Profile.t -> int
