(** The ext3 / ixt3 file system.

    One implementation serves both: a {!Profile.t} selects stock-ext3
    behaviour (write errors ignored, delete-path errors swallowed, the
    journal-commit bug, no IRON machinery) or any ixt3 variant
    (checksumming, metadata replication, data parity, transactional
    checksums — §6.1). Obtain a {!Iron_vfs.Fs.brand} with {!brand} and
    use it through the generic VFS interface. *)

val brand : Profile.t -> Iron_vfs.Fs.brand

val std : Iron_vfs.Fs.brand
(** Stock ext3. *)

val ixt3 : Iron_vfs.Fs.brand
(** ixt3 with every IRON feature enabled. *)

val layout_of_dev : Iron_disk.Dev.t -> Layout.t
(** The layout mkfs would use on this device (handy for tests and the
    scrubber). *)
