(** On-disk layout of the simulated ext3 volume.

    {v
    +---------+--------+-----------------+-------- ... --------+-------+---------+
    | 0 super | 1 gdesc| journal (jlen)  | block groups        | cksum | replica |
    +---------+--------+-----------------+-------- ... --------+-------+---------+
    v}

    Each block group is [super copy | data bitmap | inode bitmap |
    inode table (itable_blocks) | data blocks]. The checksum and replica
    regions exist in every volume (layout is profile-independent) but are
    written only when the corresponding IRON feature is enabled; placing
    them at the far end of the disk satisfies the paper's requirement
    that redundant copies live "distant from the blocks they checksum"
    (§6.1) and away from spatially-local faults (§3.3).

    Geometry is scaled down from real ext3 (128-byte inodes, 16 block
    pointers per indirect block, 4 direct pointers) so that small files
    still exercise the indirect, double- and triple-indirect paths the
    paper's workloads stress (§4.1). *)

type t = {
  block_size : int;
  num_blocks : int;
  inode_size : int;  (** 128 *)
  inodes_per_block : int;
  direct_ptrs : int;  (** 4 *)
  ptrs_per_block : int;  (** 16 — scaled-down fanout *)
  journal_start : int;  (** block number of the journal superblock *)
  journal_len : int;  (** blocks including the journal superblock *)
  groups_start : int;
  blocks_per_group : int;
  itable_blocks : int;
  inodes_per_group : int;
  ngroups : int;
  cksum_start : int;
  cksum_blocks : int;
  rlog_start : int;  (** the replica log: commit-time copies land here *)
  rlog_blocks : int;
  rmap_start : int;  (** dynamic-replica map: one u32 slot per block *)
  rmap_blocks : int;
  replica_start : int;
  replica_blocks : int;
  cksum_per_block : int;  (** SHA-1 digests per checksum-table block *)
}

val compute : block_size:int -> num_blocks:int -> t
(** Raises [Failure] if the device is too small for even one group. *)

(** {2 Per-group block numbers} *)

val group_base : t -> int -> int
val super_copy_block : t -> int -> int
val bitmap_block : t -> int -> int
val ibitmap_block : t -> int -> int

val itable_block : t -> int -> int
(** First inode-table block of a group. *)

val data_start : t -> int -> int
(** First data block of a group. *)

val data_blocks_per_group : t -> int

val group_of_block : t -> int -> int option
(** Which group a block belongs to, if it is inside the groups region. *)

val group_of_inode : t -> int -> int
val inode_location : t -> int -> int * int
(** [inode_location l ino] is [(block, offset_within_block)].
    Inode numbers start at 1; inode 2 is the root directory. *)

val total_inodes : t -> int
val total_data_blocks : t -> int

(** {2 Redundancy regions} *)

val cksum_location : t -> int -> int * int
(** Block and byte offset of the stored SHA-1 for a given block. *)

val replica_targets : t -> int list
(** The metadata blocks that [Mr] mirrors, in replica-slot order: the
    group-descriptor block, the journal superblock, then per group its
    bitmap, inode bitmap and inode-table blocks. *)

val replica_of : t -> int -> int option
(** Replica-region block holding the mirror of a given metadata block. *)

val rmap_location : t -> int -> int * int
(** Block and byte offset of the dynamic-replica-map slot for a block.
    Dynamically allocated metadata (directory and indirect blocks) gets
    its mirror allocated on first write and recorded here. *)

val root_ino : int
val first_free_ino : int
