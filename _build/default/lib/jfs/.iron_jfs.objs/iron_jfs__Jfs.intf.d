lib/jfs/jfs.mli: Iron_vfs
