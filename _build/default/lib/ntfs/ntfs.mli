(** A partial NTFS model (§5.4 — the paper's own analysis of NTFS is
    incomplete, as it is closed source; this model covers the block
    types of Table 4). The signature behaviours: {e persistence} —
    failed reads are retried up to seven times, failed data writes three
    times and MFT writes twice; strong magic-based sanity checks on MFT
    records and index blocks (metadata corruption makes the volume
    unmountable); errors reliably propagated; but, like ext3 and JFS, a
    failed data write is recorded and then never used. *)

val brand : Iron_vfs.Fs.brand

val block_types : string list
val classify : (int -> bytes) -> int -> string
