lib/ntfs/ntfs.ml: Array Bytes Char Codec Hashtbl Iron_disk Iron_util Iron_vfs List Option Result String
