lib/ntfs/ntfs.mli: Iron_vfs
