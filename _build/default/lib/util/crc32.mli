(** CRC-32 (IEEE 802.3 polynomial, reflected). Used for cheap per-block
    integrity tags where the full SHA-1 of {!Sha1} would be overkill. *)

val digest : ?off:int -> ?len:int -> bytes -> int
(** [digest b] is the CRC-32 of [b] as a non-negative int (fits 32 bits). *)

val digest_string : string -> int

val update : int -> ?off:int -> ?len:int -> bytes -> int
(** [update crc b] extends a running CRC with more data. [digest b] is
    [update 0 b]. *)
