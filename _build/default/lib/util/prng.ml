type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix (Int64.of_int seed) }

let int64 t =
  t.state <- Int64.add t.state golden;
  mix t.state

let split t = { state = mix (int64 t) }

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Keep 62 bits so the value fits OCaml's 63-bit int, non-negative. *)
  let v = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
  v mod bound

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  bound *. v /. 9007199254740992.0 (* 2^53 *)

let bool t = Int64.logand (int64 t) 1L = 1L
let byte t = Char.chr (int t 256)

let fill_bytes t b =
  for i = 0 to Bytes.length b - 1 do
    Bytes.set b i (byte t)
  done

let pick t xs =
  match xs with
  | [] -> invalid_arg "Prng.pick: empty list"
  | _ -> List.nth xs (int t (List.length xs))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
