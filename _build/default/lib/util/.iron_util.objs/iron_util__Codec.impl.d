lib/util/codec.ml: Bytes Char Format Int32
