lib/util/sha1.ml: Array Buffer Bytes Char Format Printf String
