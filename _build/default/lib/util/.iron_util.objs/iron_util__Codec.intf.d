lib/util/codec.mli:
