lib/util/hexdump.ml: Bytes Char Format
