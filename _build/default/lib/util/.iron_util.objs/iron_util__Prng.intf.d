lib/util/prng.mli:
