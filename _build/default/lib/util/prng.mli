(** Deterministic pseudo-random number generator (splitmix64).

    Every stochastic choice in the simulator — rotational latencies,
    corruption noise, workload file sizes — draws from an explicitly
    seeded [Prng.t], so an entire fingerprinting campaign or benchmark
    run replays bit-for-bit. *)

type t

val create : int -> t
(** [create seed] makes a generator; equal seeds give equal streams. *)

val split : t -> t
(** A statistically independent child generator. The parent advances by
    one draw; repeated splits from the same parent state differ. *)

val int64 : t -> int64
val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound); [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] draws uniformly from [0, bound). *)

val bool : t -> bool
val byte : t -> char
val fill_bytes : t -> bytes -> unit

val pick : t -> 'a list -> 'a
(** Uniform choice from a non-empty list. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
