let pp_range fmt b lo hi =
  let line off =
    Format.fprintf fmt "%08x  " off;
    for i = 0 to 15 do
      if off + i < hi then
        Format.fprintf fmt "%02x " (Char.code (Bytes.get b (off + i)))
      else Format.fprintf fmt "   ";
      if i = 7 then Format.fprintf fmt " "
    done;
    Format.fprintf fmt " |";
    for i = 0 to 15 do
      if off + i < hi then begin
        let c = Bytes.get b (off + i) in
        if c >= ' ' && c <= '~' then Format.fprintf fmt "%c" c
        else Format.fprintf fmt "."
      end
    done;
    Format.fprintf fmt "|@."
  in
  let off = ref lo in
  while !off < hi do
    line !off;
    off := !off + 16
  done

let pp fmt b = pp_range fmt b 0 (Bytes.length b)
let pp_prefix n fmt b = pp_range fmt b 0 (min n (Bytes.length b))
