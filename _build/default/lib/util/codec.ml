exception Decode_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Decode_error s)) fmt

type reader = { rbuf : bytes; mutable rpos : int }

let reader ?(pos = 0) rbuf = { rbuf; rpos = pos }
let reader_pos r = r.rpos
let remaining r = Bytes.length r.rbuf - r.rpos

let need r n =
  if r.rpos + n > Bytes.length r.rbuf then
    fail "codec: read of %d bytes at %d overruns buffer of %d" n r.rpos
      (Bytes.length r.rbuf)

let get_u8 r =
  need r 1;
  let v = Char.code (Bytes.get r.rbuf r.rpos) in
  r.rpos <- r.rpos + 1;
  v

let get_u16 r =
  need r 2;
  let v = Bytes.get_uint16_le r.rbuf r.rpos in
  r.rpos <- r.rpos + 2;
  v

let get_u32 r =
  need r 4;
  let v = Int32.to_int (Bytes.get_int32_le r.rbuf r.rpos) land 0xFFFFFFFF in
  r.rpos <- r.rpos + 4;
  v

let get_u64 r =
  need r 8;
  let v = Bytes.get_int64_le r.rbuf r.rpos in
  r.rpos <- r.rpos + 8;
  v

let get_bytes r n =
  if n < 0 then fail "codec: negative length %d" n;
  need r n;
  let v = Bytes.sub r.rbuf r.rpos n in
  r.rpos <- r.rpos + n;
  v

let get_string r n = Bytes.to_string (get_bytes r n)

type writer = { wbuf : bytes; mutable wpos : int }

let writer ?(pos = 0) wbuf = { wbuf; wpos = pos }
let writer_pos w = w.wpos

let room w n =
  if w.wpos + n > Bytes.length w.wbuf then
    fail "codec: write of %d bytes at %d overruns buffer of %d" n w.wpos
      (Bytes.length w.wbuf)

let put_u8 w v =
  room w 1;
  Bytes.set w.wbuf w.wpos (Char.chr (v land 0xFF));
  w.wpos <- w.wpos + 1

let put_u16 w v =
  room w 2;
  Bytes.set_uint16_le w.wbuf w.wpos (v land 0xFFFF);
  w.wpos <- w.wpos + 2

let put_u32 w v =
  room w 4;
  Bytes.set_int32_le w.wbuf w.wpos (Int32.of_int v);
  w.wpos <- w.wpos + 4

let put_u64 w v =
  room w 8;
  Bytes.set_int64_le w.wbuf w.wpos v;
  w.wpos <- w.wpos + 8

let put_bytes w b =
  let n = Bytes.length b in
  room w n;
  Bytes.blit b 0 w.wbuf w.wpos n;
  w.wpos <- w.wpos + n

let put_string w s = put_bytes w (Bytes.of_string s)
let read_u32 buf off = Int32.to_int (Bytes.get_int32_le buf off) land 0xFFFFFFFF
let write_u32 buf off v = Bytes.set_int32_le buf off (Int32.of_int v)
