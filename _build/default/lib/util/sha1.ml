type t = string (* 20 raw bytes *)

let mask = 0xFFFFFFFF
let ( &< ) x n = (x lsl n) land mask
let rotl x n = (x &< n) lor (x lsr (32 - n))

type ctx = {
  mutable h0 : int;
  mutable h1 : int;
  mutable h2 : int;
  mutable h3 : int;
  mutable h4 : int;
  block : bytes; (* 64-byte accumulation buffer *)
  mutable used : int; (* bytes pending in [block] *)
  mutable total : int; (* total message bytes fed *)
  w : int array; (* message schedule, reused across blocks *)
}

let init () =
  {
    h0 = 0x67452301;
    h1 = 0xEFCDAB89;
    h2 = 0x98BADCFE;
    h3 = 0x10325476;
    h4 = 0xC3D2E1F0;
    block = Bytes.create 64;
    used = 0;
    total = 0;
    w = Array.make 80 0;
  }

let compress ctx buf off =
  let w = ctx.w in
  for i = 0 to 15 do
    let p = off + (i * 4) in
    w.(i) <-
      (Char.code (Bytes.get buf p) lsl 24)
      lor (Char.code (Bytes.get buf (p + 1)) lsl 16)
      lor (Char.code (Bytes.get buf (p + 2)) lsl 8)
      lor Char.code (Bytes.get buf (p + 3))
  done;
  for i = 16 to 79 do
    w.(i) <- rotl (w.(i - 3) lxor w.(i - 8) lxor w.(i - 14) lxor w.(i - 16)) 1
  done;
  let a = ref ctx.h0
  and b = ref ctx.h1
  and c = ref ctx.h2
  and d = ref ctx.h3
  and e = ref ctx.h4 in
  for i = 0 to 79 do
    let f, k =
      if i < 20 then (!b land !c lor (lnot !b land mask land !d), 0x5A827999)
      else if i < 40 then (!b lxor !c lxor !d, 0x6ED9EBA1)
      else if i < 60 then
        (!b land !c lor (!b land !d) lor (!c land !d), 0x8F1BBCDC)
      else (!b lxor !c lxor !d, 0xCA62C1D6)
    in
    let tmp = (rotl !a 5 + f + !e + k + w.(i)) land mask in
    e := !d;
    d := !c;
    c := rotl !b 30;
    b := !a;
    a := tmp
  done;
  ctx.h0 <- (ctx.h0 + !a) land mask;
  ctx.h1 <- (ctx.h1 + !b) land mask;
  ctx.h2 <- (ctx.h2 + !c) land mask;
  ctx.h3 <- (ctx.h3 + !d) land mask;
  ctx.h4 <- (ctx.h4 + !e) land mask

let feed ctx ?(off = 0) ?len buf =
  let len = match len with Some l -> l | None -> Bytes.length buf - off in
  ctx.total <- ctx.total + len;
  let pos = ref off in
  let left = ref len in
  (* Top up a partial block first. *)
  if ctx.used > 0 then begin
    let take = min !left (64 - ctx.used) in
    Bytes.blit buf !pos ctx.block ctx.used take;
    ctx.used <- ctx.used + take;
    pos := !pos + take;
    left := !left - take;
    if ctx.used = 64 then begin
      compress ctx ctx.block 0;
      ctx.used <- 0
    end
  end;
  while !left >= 64 do
    compress ctx buf !pos;
    pos := !pos + 64;
    left := !left - 64
  done;
  if !left > 0 then begin
    Bytes.blit buf !pos ctx.block ctx.used !left;
    ctx.used <- ctx.used + !left
  end

let finalize ctx =
  let bits = ctx.total * 8 in
  let pad_len =
    let rem = (ctx.total + 1) mod 64 in
    if rem <= 56 then 56 - rem + 1 else 64 - rem + 56 + 1
  in
  let pad = Bytes.make (pad_len + 8) '\000' in
  Bytes.set pad 0 '\x80';
  for i = 0 to 7 do
    Bytes.set pad
      (pad_len + i)
      (Char.chr ((bits lsr ((7 - i) * 8)) land 0xFF))
  done;
  (* Feed the padding without perturbing [total]. *)
  let saved = ctx.total in
  feed ctx pad;
  ctx.total <- saved;
  assert (ctx.used = 0);
  let out = Bytes.create 20 in
  let put i v =
    Bytes.set out (i * 4) (Char.chr ((v lsr 24) land 0xFF));
    Bytes.set out ((i * 4) + 1) (Char.chr ((v lsr 16) land 0xFF));
    Bytes.set out ((i * 4) + 2) (Char.chr ((v lsr 8) land 0xFF));
    Bytes.set out ((i * 4) + 3) (Char.chr (v land 0xFF))
  in
  put 0 ctx.h0;
  put 1 ctx.h1;
  put 2 ctx.h2;
  put 3 ctx.h3;
  put 4 ctx.h4;
  Bytes.to_string out

let digest ?(off = 0) ?len buf =
  let ctx = init () in
  feed ctx ~off ?len buf;
  finalize ctx

let digest_string s = digest (Bytes.of_string s)

let to_hex d =
  let b = Buffer.create 40 in
  String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) d;
  Buffer.contents b

let to_raw d = d

let of_raw s =
  if String.length s <> 20 then invalid_arg "Sha1.of_raw: expected 20 bytes";
  s

let equal = String.equal
let compare = String.compare
let pp fmt d = Format.pp_print_string fmt (to_hex d)
