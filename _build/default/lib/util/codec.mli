(** Little-endian binary codecs over [bytes].

    All file-system on-disk structures in this repository are serialized
    with these primitives so that corruption injected at the byte level is
    observable exactly as it would be on a real disk. Readers raise
    {!Decode_error} on structurally impossible input (e.g. a string length
    that runs past the end of the block); higher layers translate that
    into their own sanity-check failure handling. *)

exception Decode_error of string

(** A cursor over a byte buffer, used for sequential reads. *)
type reader

val reader : ?pos:int -> bytes -> reader

val reader_pos : reader -> int
(** Current offset of the cursor within the underlying buffer. *)

val remaining : reader -> int
(** Bytes left between the cursor and the end of the buffer. *)

val get_u8 : reader -> int
val get_u16 : reader -> int
val get_u32 : reader -> int
(** 32-bit unsigned value; always fits in a 63-bit OCaml [int]. *)

val get_u64 : reader -> int64
val get_bytes : reader -> int -> bytes
val get_string : reader -> int -> string

(** A cursor for sequential writes. Writes past the end of the buffer
    raise {!Decode_error} (the buffer is a fixed-size disk block; growing
    it would be meaningless). *)
type writer

val writer : ?pos:int -> bytes -> writer
val writer_pos : writer -> int
val put_u8 : writer -> int -> unit
val put_u16 : writer -> int -> unit
val put_u32 : writer -> int -> unit
val put_u64 : writer -> int64 -> unit
val put_bytes : writer -> bytes -> unit
val put_string : writer -> string -> unit

val read_u32 : bytes -> int -> int
(** [read_u32 buf off] reads a u32 at an absolute offset. *)

val write_u32 : bytes -> int -> int -> unit
