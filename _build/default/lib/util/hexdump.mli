(** Debug pretty-printing of raw blocks. *)

val pp : Format.formatter -> bytes -> unit
(** Classic 16-bytes-per-line hex + ASCII dump. *)

val pp_prefix : int -> Format.formatter -> bytes -> unit
(** [pp_prefix n] dumps only the first [n] bytes. *)
