type error = Eio | Enxio

let error_to_string = function Eio -> "EIO" | Enxio -> "ENXIO"
let pp_error fmt e = Format.pp_print_string fmt (error_to_string e)

type t = {
  block_size : int;
  num_blocks : int;
  read : int -> (bytes, error) result;
  write : int -> bytes -> (unit, error) result;
  sync : unit -> (unit, error) result;
  now : unit -> float;
}

let in_range t b = b >= 0 && b < t.num_blocks

let read_exn t b =
  match t.read b with
  | Ok data -> data
  | Error e -> failwith (Printf.sprintf "read %d: %s" b (error_to_string e))

let write_exn t b data =
  match t.write b data with
  | Ok () -> ()
  | Error e -> failwith (Printf.sprintf "write %d: %s" b (error_to_string e))
