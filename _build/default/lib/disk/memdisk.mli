(** In-memory simulated disk with a service-time model.

    The store is a flat array of blocks; the timing model captures the
    three components that matter for the paper's Table 6 comparisons:

    - {b seek}: moving the arm between distant blocks costs
      [seek_min + seek_span * sqrt(distance / num_blocks)] ms;
    - {b rotation}: after any seek, a uniformly random rotational wait in
      [0, full_rotation) (drawn from the disk's own deterministic PRNG);
      strictly sequential accesses stream with no rotational wait;
    - {b transfer}: [block_size / bandwidth].

    [sync] with dirty data pending charges half a rotation — the ordering
    stall that a journaling file system pays between its journal-data
    writes and its commit write, and that transactional checksums avoid. *)

type params = {
  block_size : int;  (** bytes per block (default 4096) *)
  num_blocks : int;  (** default 2048 (an 8 MiB volume) *)
  seek_min_ms : float;  (** track-to-track seek (default 0.8) *)
  seek_span_ms : float;  (** extra for a full-stroke seek (default 7.2) *)
  rotation_ms : float;  (** full revolution, 7200 RPM ~ 8.33 *)
  bandwidth_mb_s : float;  (** media transfer rate (default 40.0) *)
  seed : int;  (** PRNG seed for rotational positions *)
}

val default_params : params

type t

val create : ?params:params -> unit -> t
val dev : t -> Dev.t

(** {2 Statistics} *)

type stats = {
  reads : int;
  writes : int;
  syncs : int;
  seeks : int;  (** requests that required arm movement *)
  elapsed_ms : float;  (** total simulated service time *)
}

val stats : t -> stats
val reset_stats : t -> unit

val set_time_model : t -> bool -> unit
(** Disable ([false]) or enable the service-time model. Fingerprinting
    campaigns disable it (they care about behaviour, not time); the
    benchmark harness enables it. Default: enabled. *)

(** {2 Raw access for setup, verification and snapshots}

    These bypass the timing model and statistics. *)

val peek : t -> int -> bytes
val poke : t -> int -> bytes -> unit

type snapshot

val snapshot : t -> snapshot
val restore : t -> snapshot -> unit
(** [restore] also resets statistics and the simulated clock, giving
    fingerprinting runs identical initial conditions. *)
