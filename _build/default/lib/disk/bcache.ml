type t = {
  device : Dev.t;
  capacity : int;
  table : (int, bytes) Hashtbl.t;
  order : int Queue.t; (* insertion order, for FIFO eviction *)
  mutable hits : int;
  mutable misses : int;
}

let create ?(capacity = 256) device =
  { device; capacity; table = Hashtbl.create 64; order = Queue.create (); hits = 0; misses = 0 }

let dev t = t.device

let evict_if_full t =
  while Hashtbl.length t.table >= t.capacity && not (Queue.is_empty t.order) do
    let victim = Queue.pop t.order in
    Hashtbl.remove t.table victim
  done

let insert t b data =
  if not (Hashtbl.mem t.table b) then begin
    evict_if_full t;
    Queue.push b t.order
  end;
  Hashtbl.replace t.table b (Bytes.copy data)

let read t b =
  match Hashtbl.find_opt t.table b with
  | Some data ->
      t.hits <- t.hits + 1;
      Ok (Bytes.copy data)
  | None -> (
      t.misses <- t.misses + 1;
      match t.device.Dev.read b with
      | Ok data ->
          insert t b data;
          Ok data
      | Error _ as e -> e)

let write t b data =
  insert t b data;
  t.device.Dev.write b data

let sync t = t.device.Dev.sync ()
let invalidate t b = Hashtbl.remove t.table b

let invalidate_all t =
  Hashtbl.reset t.table;
  Queue.clear t.order

let hits t = t.hits
let misses t = t.misses
