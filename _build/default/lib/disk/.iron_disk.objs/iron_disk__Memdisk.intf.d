lib/disk/memdisk.mli: Dev
