lib/disk/dev.mli: Format
