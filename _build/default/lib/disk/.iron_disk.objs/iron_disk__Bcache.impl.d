lib/disk/bcache.ml: Bytes Dev Hashtbl Queue
