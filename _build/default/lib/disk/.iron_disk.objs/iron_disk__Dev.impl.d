lib/disk/dev.ml: Format Printf
