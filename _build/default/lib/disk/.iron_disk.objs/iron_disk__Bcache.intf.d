lib/disk/bcache.mli: Dev
