lib/disk/memdisk.ml: Array Bytes Dev Iron_util
