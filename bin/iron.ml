(* The iron command-line tool: run the paper's experiments from a shell.

     iron fingerprint [FS]...      failure-policy matrices (Figure 2/3)
     iron summary                  Table 5 technique summary
     iron bench                    Table 6 overheads
     iron space                    space overheads
     iron scrub                    the scrubbing demo
     iron robust                   detected-and-recovered counts
     iron stats                    observed campaign metrics table
     iron crash [FS]...            crash-state exploration (power cuts)
     iron fuzz [FS]...             bounded workload fuzzing (B3) over crash states
     iron explain [FS]...          crash forensics: culprit writes + timeline
     iron diff GOLDEN FRESH        compare artifact trees; exit 1 on drift
     iron golden [--update]        regenerate / check golden/ artifacts

   fingerprint, robust and bench also take --trace FILE / --metrics FILE
   to export Chrome-trace / JSONL views of the run ('-' = stdout);
   fingerprint and crash take --out DIR to write versioned golden-schema
   artifacts (Iron_report.Report) for the regression gate. *)

open Cmdliner

let brands =
  [
    ("ext3", Iron_ext3.Ext3.std);
    ("reiserfs", Iron_reiserfs.Reiserfs.brand);
    ("jfs", Iron_jfs.Jfs.brand);
    ("ntfs", Iron_ntfs.Ntfs.brand);
    ("ixt3", Iron_ext3.Ext3.ixt3);
    ("ext3-writeback", Iron_ext3.Modes.writeback);
    ("ext3-data", Iron_ext3.Modes.data);
  ]

let brand_conv =
  let parse s =
    match List.assoc_opt s brands with
    | Some b -> Ok b
    | None ->
        Error (`Msg (Printf.sprintf "unknown file system %S (try: %s)" s
                       (String.concat ", " (List.map fst brands))))
  in
  Arg.conv (parse, fun fmt b -> Format.pp_print_string fmt (Iron_vfs.Fs.brand_name b))

let fs_args =
  Arg.(value & pos_all brand_conv [ Iron_ext3.Ext3.std ]
       & info [] ~docv:"FS" ~doc:"File systems to fingerprint.")

(* -j N: worker domains for the campaign executor. The default is what
   the runtime recommends for this machine. *)
let jobs_arg =
  Arg.(value
       & opt int (Iron_util.Pool.default_jobs ())
       & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Number of worker domains for independent experiments \
                 (default: the runtime's recommended domain count). The \
                 output is byte-identical for any value.")

let seed_arg =
  Arg.(value
       & opt int Iron_core.Experiment.default_seed
       & info [ "seed" ] ~docv:"SEED"
           ~doc:"Campaign seed threaded through the experiment spec; two \
                 runs with the same seed are identical by construction.")

let verbose_arg =
  Arg.(value & flag
       & info [ "v"; "verbose" ]
           ~doc:"Print per-campaign counters (jobs done/total, faults \
                 fired, wall-clock) from the aggregator.")

(* --trace/--metrics: export the observability layer's outputs. "-"
   means stdout. Either flag switches the campaign to ~observe:true. *)
let trace_arg =
  Arg.(value
       & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Write a Chrome trace_event file (open in chrome://tracing \
                 or Perfetto) of the campaign's spans to $(docv) ('-' for \
                 stdout). The span set is byte-identical for any -j.")

let metrics_arg =
  Arg.(value
       & opt (some string) None
       & info [ "metrics" ] ~docv:"FILE"
           ~doc:"Write the merged metrics registry as JSONL to $(docv) \
                 ('-' for stdout). Byte-identical for any -j.")

(* --out DIR: write versioned golden-schema artifacts of the run. *)
let out_arg =
  Arg.(value
       & opt (some string) None
       & info [ "out" ] ~docv:"DIR"
           ~doc:"Write the run's results as versioned golden-schema \
                 artifacts (one canonical JSON file per file system) \
                 into $(docv), for $(b,iron diff). The artifacts carry \
                 only the deterministic outputs, so two runs with the \
                 same seed produce byte-identical files.")

(* Post-parse argument validation (Iron_fuzz.Args): out-of-range
   numbers and unknown brand names get a one-line error and exit 2,
   never an exception trace. *)
let validate = function
  | Ok v -> v
  | Error msg ->
      Format.eprintf "iron: %s@." msg;
      exit 2

let known_brands = List.map fst brands

(* mkdir -p, portably enough for artifact output directories. *)
let rec mkdir_p dir =
  if dir = "" || dir = "." || dir = "/" || Sys.file_exists dir then ()
  else begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let save_artifact dir art =
  mkdir_p dir;
  let path = Filename.concat dir (Iron_report.Report.filename art) in
  Iron_report.Report.save path art

let write_output path contents =
  match path with
  | "-" -> print_string contents
  | file ->
      let oc = open_out file in
      output_string oc contents;
      close_out oc

let export_observed ~name ~seed ~trace ~metrics observed =
  (match trace with
  | None -> ()
  | Some path ->
      let procs =
        List.map
          (fun (name, (o : Iron_core.Driver.observed)) -> (name, o.Iron_core.Driver.spans))
          observed
      in
      let dropped =
        List.map
          (fun (name, (o : Iron_core.Driver.observed)) ->
            (name, o.Iron_core.Driver.spans_dropped))
          observed
      in
      write_output path (Iron_obs.Obs.chrome_trace ~dropped procs));
  match metrics with
  | None -> ()
  | Some path ->
      let snap =
        Iron_obs.Obs.merge
          (List.map
             (fun (_, (o : Iron_core.Driver.observed)) -> o.Iron_core.Driver.metrics)
             observed)
      in
      (* The merged registry ships as a versioned metrics artifact, so
         the same bytes serve as an iron-diffable golden. *)
      write_output path
        (Iron_report.Report.to_string
           (Iron_report.Report.of_metrics ~name ~seed
              (Iron_report.Report.metrics_of_snapshot snap)))

let pp_campaign_stats verbose report =
  if verbose then
    Format.eprintf "%s %a@." report.Iron_core.Driver.name
      Iron_core.Driver.pp_stats report.Iron_core.Driver.stats

let fingerprint_cmd =
  let run fses jobs seed verbose trace metrics out =
    let observe = trace <> None || metrics <> None in
    let observed =
      List.filter_map
        (fun brand ->
          let report = Iron_core.Driver.fingerprint ~jobs ~seed ~observe brand in
          Format.printf "%a@." Iron_core.Render.pp_report report;
          Format.printf "fired=%d detected+recovered=%d@.@."
            (Iron_core.Driver.experiments_run report)
            (Iron_core.Driver.detected_and_recovered report);
          pp_campaign_stats verbose report;
          (match out with
          | None -> ()
          | Some dir ->
              save_artifact dir (Iron_report.Report.of_fingerprint ~seed report));
          Option.map
            (fun o -> (report.Iron_core.Driver.name, o))
            report.Iron_core.Driver.observed)
        fses
    in
    export_observed ~name:"fingerprint" ~seed ~trace ~metrics observed
  in
  Cmd.v
    (Cmd.info "fingerprint"
       ~doc:"Inject type-aware faults beneath a file system and print its failure-policy matrices (the paper's Figures 2 and 3).")
    Term.(const run $ fs_args $ jobs_arg $ seed_arg $ verbose_arg $ trace_arg
          $ metrics_arg $ out_arg)

let summary_cmd =
  let run jobs seed verbose =
    let reports =
      List.map
        (fun (_, b) ->
          let r = Iron_core.Driver.fingerprint ~jobs ~seed b in
          pp_campaign_stats verbose r;
          r)
        (* Table 5 is one row per commodity file system; ixt3 is ours,
           and the ext3 mode variants share ext3's techniques. *)
        (List.filter
           (fun (n, _) ->
             n <> "ntfs" && n <> "ixt3" && n <> "ext3-writeback"
             && n <> "ext3-data")
           brands)
    in
    Format.printf "%a@." Iron_core.Render.pp_summary (Iron_core.Render.summarize reports)
  in
  Cmd.v
    (Cmd.info "summary" ~doc:"Table 5: which IRON techniques each file system uses.")
    Term.(const run $ jobs_arg $ seed_arg $ verbose_arg)

let bench_cmd =
  let run jobs trace metrics =
    let observe = trace <> None || metrics <> None in
    if not observe then
      Format.printf "%a@." Iron_workloads.Table6.pp
        (Iron_workloads.Table6.compute ~jobs ())
    else begin
      let obs = Iron_obs.Obs.create () in
      let table = Iron_workloads.Table6.compute ~obs ~jobs () in
      Format.printf "%a@." Iron_workloads.Table6.pp table;
      (match trace with
      | None -> ()
      | Some path ->
          (* Span order is only meaningful at -j 1; see Table6.compute. *)
          write_output path
            (Iron_obs.Obs.chrome_trace [ ("bench", Iron_obs.Obs.spans obs) ]));
      match metrics with
      | None -> ()
      | Some path ->
          write_output path
            (Iron_obs.Obs.jsonl_of_snapshot (Iron_obs.Obs.snapshot obs))
    end
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:"Table 6: time overheads of the 32 ixt3 feature combinations under SSH-Build, Web, PostMark and TPC-B.")
    Term.(const run $ jobs_arg $ trace_arg $ metrics_arg)

let space_cmd =
  let run () =
    Format.printf "%a@." Iron_workloads.Space.pp (Iron_workloads.Space.measure ())
  in
  Cmd.v
    (Cmd.info "space" ~doc:"Space overheads of checksums, replication and parity.")
    Term.(const run $ const ())

let robust_cmd =
  let run jobs seed verbose trace metrics =
    let observe = trace <> None || metrics <> None in
    let observed =
      List.filter_map
        (fun (name, brand) ->
          let r = Iron_core.Driver.fingerprint ~jobs ~seed ~observe brand in
          Format.printf "%-10s fired=%d detected+recovered=%d@." name
            (Iron_core.Driver.experiments_run r)
            (Iron_core.Driver.detected_and_recovered r);
          pp_campaign_stats verbose r;
          Option.map (fun o -> (name, o)) r.Iron_core.Driver.observed)
        brands
    in
    export_observed ~name:"robust" ~seed ~trace ~metrics observed
  in
  Cmd.v
    (Cmd.info "robust"
       ~doc:"Count fault scenarios each file system detects and recovers from.")
    Term.(const run $ jobs_arg $ seed_arg $ verbose_arg $ trace_arg
          $ metrics_arg)

let stats_cmd =
  let run fses jobs seed verbose out =
    List.iter
      (fun brand ->
        let report = Iron_core.Driver.fingerprint ~jobs ~seed ~observe:true brand in
        (match report.Iron_core.Driver.observed with
        | Some o ->
            Format.printf "== %s ==@.%a@." report.Iron_core.Driver.name
              Iron_obs.Obs.pp_snapshot o.Iron_core.Driver.metrics;
            (match out with
            | None -> ()
            | Some dir ->
                save_artifact dir
                  (Iron_report.Report.of_metrics
                     ~name:report.Iron_core.Driver.name ~seed
                     (Iron_report.Report.metrics_of_snapshot
                        o.Iron_core.Driver.metrics)))
        | None -> ());
        pp_campaign_stats verbose report)
      fses
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Run an observed fingerprinting campaign and print the merged \
             metrics registry (disk I/O, injected faults, journal commits, \
             scrub passes) as a per-subsystem table. With --out, also \
             write each registry as a versioned metrics artifact for \
             $(b,iron diff). Deterministic: byte-identical for any -j \
             with the same --seed.")
    Term.(const run $ fs_args $ jobs_arg $ seed_arg $ verbose_arg $ out_arg)

let scrub_cmd =
  let run () =
    (* Build a damaged ixt3 volume and scrub it. *)
    let module Memdisk = Iron_disk.Memdisk in
    let module Fault = Iron_fault.Fault in
    let module Fs = Iron_vfs.Fs in
    let disk = Memdisk.create () in
    Memdisk.set_time_model disk false;
    let inj = Fault.create (Memdisk.dev disk) in
    let dev = Fault.dev inj in
    let brand = Iron_ixt3.Ixt3.full in
    (match Fs.mkfs brand dev with Ok () -> () | Error _ -> failwith "mkfs");
    (match Fs.mount brand dev with
    | Ok (Fs.Boxed ((module F), t) as boxed) ->
        (match Iron_core.Workload.fixture boxed with
        | Ok () -> ()
        | Error _ -> failwith "fixture");
        ignore (F.unmount t)
    | Error _ -> failwith "mount");
    let classify = Iron_ext3.Classifier.classify (Memdisk.peek disk) in
    let first_with label =
      let rec go b =
        if b >= 2048 then None
        else if classify b = label then Some b
        else go (b + 1)
      in
      go 0
    in
    List.iter
      (fun label ->
        match first_with label with
        | Some b ->
            ignore
              (Fault.arm inj
                 (Fault.rule ~persistence:Fault.Until_write (Fault.Block b)
                    Fault.Fail_read));
            Printf.printf "injected latent error under %s block %d\n" label b
        | None -> ())
      [ "inode"; "dir"; "data" ];
    match Iron_ixt3.Scrub.run Iron_ext3.Profile.ixt3 dev with
    | Ok r -> Format.printf "%a@." Iron_ixt3.Scrub.pp_report r
    | Error e -> Format.printf "scrub failed: %a@." Iron_vfs.Errno.pp e
  in
  Cmd.v
    (Cmd.info "scrub"
       ~doc:"Demonstrate eager detection: damage an ixt3 volume, then scrub and repair it.")
    Term.(const run $ const ())

let crash_cmd =
  let states_arg =
    Arg.(value & opt int 1000
         & info [ "states" ] ~docv:"N"
             ~doc:"Upper bound on distinct crash states per file system \
                   (systematic states first, seeded random per-block \
                   prefixes top up to the bound).")
  in
  let check_arg =
    Arg.(value & opt_all string []
         & info [ "check" ] ~docv:"FS"
             ~doc:"Exit non-zero if $(docv) reports any invariant \
                   violation. Repeatable; used by CI to pin the \
                   transactional-checksum guarantee.")
  in
  let explain_arg =
    Arg.(value & flag
         & info [ "explain" ]
             ~doc:"Run the causal-forensics pass: minimize each violation \
                   to the dropped/torn writes that produced it and print \
                   the attribution chains (see $(b,iron explain) for the \
                   full timeline view). With --out, also write a \
                   forensics artifact per file system.")
  in
  let run fses jobs seed states check explain trace metrics out =
    let states = validate (Iron_fuzz.Args.positive ~what:"--states" states) in
    let jobs = validate (Iron_fuzz.Args.positive ~what:"--jobs" jobs) in
    let observe = trace <> None || metrics <> None in
    let observed = ref [] in
    let failed = ref [] in
    List.iter
      (fun brand ->
        let obs = if observe then Some (Iron_obs.Obs.create ()) else None in
        let r =
          Iron_crash.Explore.explore ~jobs ~seed ~max_states:states
            ~forensics:explain ?obs brand
        in
        Format.printf "%a@.@." Iron_crash.Explore.pp_report r;
        if explain then begin
          List.iter
            (fun ch -> Format.printf "%a@." Iron_crash.Explore.pp_chain ch)
            r.Iron_crash.Explore.chains;
          if r.Iron_crash.Explore.chains <> [] then Format.printf "@."
        end;
        (match obs with
        | Some o -> observed := (r.Iron_crash.Explore.fs, o) :: !observed
        | None -> ());
        (match out with
        | None -> ()
        | Some dir ->
            save_artifact dir
              (Iron_report.Report.of_crash ~seed ~max_states:states r);
            if explain then
              save_artifact dir
                (Iron_report.Report.of_forensics ~seed ~max_states:states r));
        if
          List.mem r.Iron_crash.Explore.fs check
          && r.Iron_crash.Explore.violations <> []
        then failed := r.Iron_crash.Explore.fs :: !failed)
      fses;
    let observed = List.rev !observed in
    (match trace with
    | None -> ()
    | Some path ->
        write_output path
          (Iron_obs.Obs.chrome_trace
             (List.map (fun (n, o) -> (n, Iron_obs.Obs.spans o)) observed)));
    (match metrics with
    | None -> ()
    | Some path ->
        write_output path
          (Iron_obs.Obs.jsonl_of_snapshot
             (Iron_obs.Obs.merge
                (List.map (fun (_, o) -> Iron_obs.Obs.snapshot o) observed))));
    match !failed with
    | [] -> ()
    | fs ->
        Format.eprintf "crash check failed: violations on %s@."
          (String.concat ", " (List.rev fs));
        exit 1
  in
  Cmd.v
    (Cmd.info "crash"
       ~doc:"Enumerate the disk states a power cut could leave behind \
             (any subset of each sync-delimited reorder window, torn \
             writes, a write-back cache that lies about sync) and check \
             each one: the volume mounts, recovery does not panic, every \
             fsync'd file is intact, and fsck is clean. ext3 without \
             transactional checksums replays reordered commits as \
             garbage; ixt3 detects the mismatch and refuses.")
    Term.(const run $ fs_args $ jobs_arg $ seed_arg $ states_arg $ check_arg
          $ explain_arg $ trace_arg $ metrics_arg $ out_arg)

(* --- fuzz: bounded black-box workload fuzzing (B3) --------------------- *)

let fuzz_cmd =
  (* FS arguments parse as plain strings so unknown names flow through
     Iron_fuzz.Args.brand: one-line error, exit 2 (the table-driven CLI
     test pins this). *)
  let fs_str_args =
    Arg.(value & pos_all string [ "ext3" ]
         & info [] ~docv:"FS" ~doc:"File systems to fuzz.")
  in
  let seq_arg =
    Arg.(value & opt int 1
         & info [ "seq" ] ~docv:"N"
             ~doc:"Workload-sequence bound: every workload of length <= \
                   $(docv) over the generator's name set. 1 and 2 are \
                   exhaustive (37 and 1406 workloads); 3 adds seeded \
                   sampled triples. Must be 1, 2 or 3.")
  in
  let cap_arg =
    Arg.(value & opt int 150
         & info [ "states-per-workload" ] ~docv:"N"
             ~doc:"Crash-state bound per workload (systematic states \
                   first, seeded random per-block prefixes top up).")
  in
  let samples_arg =
    Arg.(value & opt int 200
         & info [ "samples" ] ~docv:"N"
             ~doc:"Seeded seq-3 workload samples (only with --seq 3).")
  in
  let explain_arg =
    Arg.(value & flag
         & info [ "explain" ]
             ~doc:"Run the causal-forensics pass on each violating \
                   workload: minimize every violation to the dropped or \
                   torn writes that produced it and print the \
                   attribution chains.")
  in
  let run fses jobs seed seq cap samples explain out =
    let seq = validate (Iron_fuzz.Args.seq seq) in
    let cap =
      validate (Iron_fuzz.Args.positive ~what:"--states-per-workload" cap)
    in
    let samples = validate (Iron_fuzz.Args.positive ~what:"--samples" samples) in
    let jobs = validate (Iron_fuzz.Args.positive ~what:"--jobs" jobs) in
    let fses =
      List.map
        (fun n -> validate (Iron_fuzz.Args.brand ~known:known_brands n))
        fses
    in
    List.iter
      (fun name ->
        let brand = List.assoc name brands in
        let r =
          Iron_fuzz.Fuzz.campaign ~jobs ~seq ~states_per_workload:cap ~seed
            ~samples ~explain brand
        in
        Format.printf "%a@.@." Iron_fuzz.Fuzz.pp_report r;
        if explain && List.exists (fun c -> c.Iron_fuzz.Fuzz.cs_chains <> []) r.Iron_fuzz.Fuzz.fz_cases
        then Format.printf "%a@." Iron_fuzz.Fuzz.pp_chains r;
        match out with
        | None -> ()
        | Some dir -> save_artifact dir (Iron_report.Report.of_fuzz r))
      fses
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Bounded black-box crash fuzzing (CrashMonkey/B3): generate \
             every workload of bounded length over a small name set, run \
             each through the crash-state explorer, deduplicate crash \
             states across workloads by content hash, and check each \
             novel state against a per-workload durability oracle. \
             Violating workloads are shrunk to their smallest \
             still-violating op subsequence. Deterministic: the report \
             and the --out artifact are byte-identical for any -j with \
             the same --seed.")
    Term.(const run $ fs_str_args $ jobs_arg $ seed_arg $ seq_arg $ cap_arg
          $ samples_arg $ explain_arg $ out_arg)

(* --- traffic: multi-tenant load with blast-radius accounting ----------- *)

let traffic_cmd =
  (* FS arguments parse as plain strings so unknown names flow through
     Iron_fuzz.Args.brand: one-line error, exit 2 (the table-driven CLI
     test pins this). *)
  let fs_str_args =
    Arg.(value & pos_all string [ "ext3" ]
         & info [] ~docv:"FS" ~doc:"File systems to load.")
  in
  let clients_arg =
    Arg.(value & opt int Iron_traffic.Traffic.default.clients
         & info [ "clients" ] ~docv:"N" ~doc:"Simulated client sessions.")
  in
  let tenants_arg =
    Arg.(value & opt int Iron_traffic.Traffic.default.tenants
         & info [ "tenants" ] ~docv:"N"
             ~doc:"Tenants; client $(i,c) belongs to $(i,c) mod $(docv).")
  in
  let duration_arg =
    Arg.(value & opt int Iron_traffic.Traffic.default.duration_ms
         & info [ "duration" ] ~docv:"MS"
             ~doc:"Simulated measurement window, milliseconds.")
  in
  let zipf_arg =
    Arg.(value & opt float Iron_traffic.Traffic.default.zipf
         & info [ "zipf" ] ~docv:"THETA"
             ~doc:"Working-set skew exponent (quantized to quarters; 0 \
                   is uniform).")
  in
  let arrival_arg =
    Arg.(value & opt string "mixed"
         & info [ "arrival" ] ~docv:"KIND"
             ~doc:"Arrival process: poisson (open loop), closed \
                   (think-time loop), or mixed.")
  in
  let blocks_arg =
    Arg.(value & opt int Iron_traffic.Traffic.default.num_blocks
         & info [ "blocks" ] ~docv:"N"
             ~doc:"Logical volume size in 4 KiB blocks (the sparse image \
                   materializes only touched chunks).")
  in
  let states_arg =
    Arg.(value & opt int Iron_traffic.Traffic.default.states
         & info [ "states" ] ~docv:"N"
             ~doc:"Crash-state budget for the blast-radius phase.")
  in
  let run fses jobs seed clients tenants duration zipf arrival blocks states
      out =
    let clients = validate (Iron_fuzz.Args.positive ~what:"--clients" clients) in
    let tenants = validate (Iron_fuzz.Args.positive ~what:"--tenants" tenants) in
    let duration =
      validate (Iron_fuzz.Args.positive ~what:"--duration" duration)
    in
    let zipf = validate (Iron_fuzz.Args.zipf zipf) in
    let arrival =
      match
        Iron_traffic.Traffic.arrival_of_string
          (validate (Iron_fuzz.Args.arrival arrival))
      with
      | Some a -> a
      | None -> assert false
    in
    let blocks = validate (Iron_fuzz.Args.positive ~what:"--blocks" blocks) in
    let states = validate (Iron_fuzz.Args.positive ~what:"--states" states) in
    let jobs = validate (Iron_fuzz.Args.positive ~what:"--jobs" jobs) in
    let fses =
      List.map
        (fun n -> validate (Iron_fuzz.Args.brand ~known:known_brands n))
        fses
    in
    let cfg =
      {
        Iron_traffic.Traffic.default with
        clients;
        tenants;
        duration_ms = duration;
        zipf;
        seed;
        num_blocks = blocks;
        arrival;
        states;
      }
    in
    List.iter
      (fun name ->
        let brand = List.assoc name brands in
        let r = Iron_traffic.Traffic.run ~jobs cfg brand in
        Format.printf "%a@.@." Iron_traffic.Traffic.pp_report r;
        match out with
        | None -> ()
        | Some dir -> save_artifact dir (Iron_report.Report.of_traffic r))
      fses
  in
  Cmd.v
    (Cmd.info "traffic"
       ~doc:"Multi-tenant traffic simulation: thousands of simulated \
             client sessions (Poisson or closed-loop arrivals, \
             Zipf-skewed working sets) against one sparse volume through \
             a deterministic discrete-event scheduler keyed on simulated \
             disk time, then a per-tenant blast-radius crash campaign: \
             which tenant's durable data does a crash state lose, and \
             whose write is to blame. ext3's shared journal lets one \
             tenant corrupt another; ixt3's transactional checksum \
             refuses. Deterministic: the report and the --out artifact \
             are byte-identical for any -j with the same --seed.")
    Term.(const run $ fs_str_args $ jobs_arg $ seed_arg $ clients_arg
          $ tenants_arg $ duration_arg $ zipf_arg $ arrival_arg $ blocks_arg
          $ states_arg $ out_arg)

(* --- explain: the causal-forensics console ----------------------------- *)

(* Render one recorded write as a Chrome-trace span. Exploration runs
   with the time model off, so w_seq is the clock: each write occupies
   [seq, seq+1) on the wlog lane; culprit first-drops repeat on a
   second lane so the attribution reads directly off the trace. *)
let explain_trace (r : Iron_crash.Explore.report) =
  let module E = Iron_crash.Explore in
  let span ~seq ~tid ~subsystem ~name ~blk =
    {
      Iron_obs.Obs.seq;
      tid;
      subsystem;
      name;
      t0 = float_of_int seq;
      dur = 1.;
      blk_lo = blk;
      blk_hi = blk;
      instant = false;
    }
  in
  let wlog =
    List.map
      (fun (l : E.logged) ->
        let name =
          Printf.sprintf "w%d %s%s%s" l.E.lg_seq l.E.lg_label
            (if l.E.lg_txn >= 0 then
               Printf.sprintf " txn%d/%s" l.E.lg_txn l.E.lg_role
             else "")
            (if l.E.lg_rule <> "" then " !" ^ l.E.lg_rule else "")
        in
        span ~seq:l.E.lg_seq ~tid:0
          ~subsystem:(Printf.sprintf "epoch%d" l.E.lg_epoch)
          ~name ~blk:l.E.lg_block)
      r.E.log
  in
  let culprits =
    List.concat_map
      (fun (ch : E.chain) ->
        List.map
          (fun (c : E.culprit) ->
            span ~seq:c.E.cu_first_seq ~tid:1 ~subsystem:"culprit"
              ~name:
                (Printf.sprintf "%s of %s"
                   (if c.E.cu_torn then "torn" else "dropped")
                   ch.E.ch_state)
              ~blk:c.E.cu_block)
          ch.E.ch_culprits)
      r.E.chains
  in
  Iron_obs.Obs.chrome_trace [ ("explain-" ^ r.E.fs, wlog @ culprits) ]

let explain_cmd =
  let states_arg =
    Arg.(value & opt int 1000
         & info [ "states" ] ~docv:"N"
             ~doc:"Upper bound on distinct crash states per file system.")
  in
  let run fses jobs seed states trace out =
    let states = validate (Iron_fuzz.Args.positive ~what:"--states" states) in
    let jobs = validate (Iron_fuzz.Args.positive ~what:"--jobs" jobs) in
    List.iter
      (fun brand ->
        let r =
          Iron_crash.Explore.explore ~jobs ~seed ~max_states:states
            ~forensics:true brand
        in
        Format.printf "%a@.@." Iron_crash.Explore.pp_report r;
        Format.printf "%a@.@."
          (Iron_crash.Explore.pp_timeline ~chains:r.Iron_crash.Explore.chains)
          r;
        List.iter
          (fun ch -> Format.printf "%a@." Iron_crash.Explore.pp_chain ch)
          r.Iron_crash.Explore.chains;
        (match out with
        | None -> ()
        | Some dir ->
            save_artifact dir
              (Iron_report.Report.of_forensics ~seed ~max_states:states r));
        match trace with
        | None -> ()
        | Some path -> write_output path (explain_trace r))
      fses
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Crash-state exploration with causal forensics: record the \
             provenance of every write (originating VFS op, journal \
             transaction and commit policy, epoch, fault rule), minimize \
             each invariant violation to the dropped or torn writes that \
             produced it, and render the merged timeline with culprit \
             writes flagged. --trace exports the same timeline as a \
             Chrome-trace lane; --out writes the forensics report as a \
             versioned artifact for $(b,iron diff). Deterministic: \
             byte-identical for any -j with the same --seed.")
    Term.(const run $ fs_args $ jobs_arg $ seed_arg $ states_arg $ trace_arg
          $ out_arg)

(* --- diff: the regression gate ---------------------------------------- *)

module Report = Iron_report.Report

let tol_arg =
  Arg.(value
       & opt float (100. *. Report.default_timing_tol)
       & info [ "timing-tol" ] ~docv:"PCT"
           ~doc:"Relative tolerance (percent) for timing-class bench \
                 metrics; policy matrices and crash counts always \
                 compare exactly.")

let json_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".json")
  |> List.sort compare

(* Diff one golden file against one fresh file; returns the number of
   differing cells (or exits 2 on load/compare errors). *)
let diff_pair ~timing_tol label golden fresh =
  let load path =
    match Report.load path with
    | Ok a -> a
    | Error e ->
        Format.eprintf "iron diff: %s@." e;
        exit 2
  in
  match
    Report.diff ~timing_tol:(timing_tol /. 100.) (load golden) (load fresh)
  with
  | Error e ->
      Format.eprintf "iron diff: %s: %s@." label e;
      exit 2
  | Ok [] ->
      Format.printf "ok   %s@." label;
      0
  | Ok items ->
      Format.printf "DIFF %s (%d cell%s)@.%a" label (List.length items)
        (if List.length items = 1 then "" else "s")
        Report.pp_items items;
      List.length items

let diff_cmd =
  let golden_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"GOLDEN" ~doc:"Golden artifact file or directory.")
  in
  let fresh_arg =
    Arg.(required & pos 1 (some string) None
         & info [] ~docv:"FRESH" ~doc:"Fresh artifact file or directory.")
  in
  let run golden fresh timing_tol =
    let fail msg =
      Format.eprintf "iron diff: %s@." msg;
      exit 2
    in
    let total =
      match (Sys.is_directory golden, Sys.is_directory fresh) with
      | exception Sys_error e -> fail e
      | true, true ->
          let g = json_files golden and f = json_files fresh in
          let common = List.filter (fun n -> List.mem n g) f in
          if common = [] then
            fail
              (Printf.sprintf "no artifact names in common between %s and %s"
                 golden fresh);
          List.iter
            (fun n ->
              if not (List.mem n g) then
                Format.printf "note %s only in %s@." n fresh)
            f;
          List.fold_left
            (fun acc n ->
              acc
              + diff_pair ~timing_tol n (Filename.concat golden n)
                  (Filename.concat fresh n))
            0 common
      | false, false ->
          diff_pair ~timing_tol (Filename.basename fresh) golden fresh
      | true, false | false, true ->
          fail "GOLDEN and FRESH must both be files or both be directories"
    in
    if total > 0 then begin
      Format.printf "@.%d differing cell%s — fresh output drifted from golden@."
        total
        (if total = 1 then "" else "s");
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:"Compare versioned artifacts (golden vs fresh): exact on \
             failure-policy matrices and crash-exploration counts, \
             tolerance-based on timing metrics, threshold evaluation when \
             GOLDEN is a bench-thresholds artifact. Prints a cell-level \
             report and exits 1 on any drift, 2 on unreadable or \
             incomparable artifacts (including unknown schema versions).")
    Term.(const run $ golden_arg $ fresh_arg $ tol_arg)

(* --- golden: regenerate or check the committed artifacts --------------- *)

(* Every registered brand is golden-gated unless explicitly opted out:
   a new brand joins the regression net by existing, not by being
   remembered here. ntfs is read-only (no write-path fingerprint rows
   worth pinning); crash exploration additionally skips the brands
   whose journals recover no structure worth diffing across power cuts
   (reiserfs's bespoke log and jfs's record log pin their behavior via
   fingerprints instead). *)
let golden_fingerprint_opt_out = [ "ntfs" ]
let golden_crash_opt_out = [ "reiserfs"; "jfs"; "ntfs" ]

(* Forensics goldens pin the §6.1 asymmetry's causal story: ext3's
   violations attribute to commit-without-payload culprits, ixt3's
   chain list is empty (Tc refuses instead). The ext3 mode variants'
   crash counts are already pinned; their chains add bulk, not
   signal. *)
let golden_forensics_fses = [ "ext3"; "ixt3" ]

(* Fuzz goldens pin the seq-1 campaign for the §6.1 pair: the corpus
   digest freezes every deduped crash state, the cases freeze ext3's
   violating workloads (minimized) and ixt3's empty case list. *)
let golden_fuzz_fses = [ "ext3"; "ixt3" ]

(* Traffic goldens pin the multi-tenant campaign for the same pair:
   load-phase throughput/latency in simulated time plus the per-tenant
   blast radius — ext3 loses tenants' durable data to other tenants'
   writes, ixt3 loses none. *)
let golden_traffic_fses = [ "ext3"; "ixt3" ]

let golden_fingerprint_fses =
  List.filter_map
    (fun (name, _) ->
      if List.mem name golden_fingerprint_opt_out then None else Some name)
    brands

let golden_crash_fses =
  List.filter_map
    (fun (name, _) ->
      if List.mem name golden_crash_opt_out then None else Some name)
    brands

let golden_cmd =
  let update_arg =
    Arg.(value & flag
         & info [ "update" ]
             ~doc:"Regenerate the golden artifacts in place (after a \
                   deliberate behavior change). Without this flag the \
                   fresh run is checked against the committed artifacts, \
                   exiting 1 on drift.")
  in
  let dir_arg =
    Arg.(value & opt string "golden"
         & info [ "dir" ] ~docv:"DIR" ~doc:"Golden artifact directory.")
  in
  let states_arg =
    Arg.(value & opt int 1000
         & info [ "states" ] ~docv:"N"
             ~doc:"Crash-state bound (must match the committed artifacts).")
  in
  let run update dir jobs seed states =
    let states = validate (Iron_fuzz.Args.positive ~what:"--states" states) in
    let jobs = validate (Iron_fuzz.Args.positive ~what:"--jobs" jobs) in
    let fresh = ref [] in
    List.iter
      (fun name ->
        let brand = List.assoc name brands in
        let r = Iron_core.Driver.fingerprint ~jobs ~seed brand in
        fresh := Report.of_fingerprint ~seed r :: !fresh)
      golden_fingerprint_fses;
    List.iter
      (fun name ->
        let brand = List.assoc name brands in
        let forensics = List.mem name golden_forensics_fses in
        let r =
          Iron_crash.Explore.explore ~jobs ~seed ~max_states:states ~forensics
            brand
        in
        fresh := Report.of_crash ~seed ~max_states:states r :: !fresh;
        if forensics then
          fresh := Report.of_forensics ~seed ~max_states:states r :: !fresh)
      golden_crash_fses;
    List.iter
      (fun name ->
        let brand = List.assoc name brands in
        let r = Iron_fuzz.Fuzz.campaign ~jobs ~seq:1 ~seed brand in
        fresh := Report.of_fuzz r :: !fresh)
      golden_fuzz_fses;
    List.iter
      (fun name ->
        let brand = List.assoc name brands in
        let cfg = { Iron_traffic.Traffic.default with seed } in
        let r = Iron_traffic.Traffic.run ~jobs cfg brand in
        fresh := Report.of_traffic r :: !fresh)
      golden_traffic_fses;
    let fresh = List.rev !fresh in
    if update then begin
      List.iter (fun art -> save_artifact dir art) fresh;
      Format.printf "wrote %d golden artifacts to %s/@." (List.length fresh) dir;
      Format.printf
        "(bench-thresholds.json is hand-maintained and left untouched)@."
    end
    else begin
      let total =
        List.fold_left
          (fun acc art ->
            let name = Report.filename art in
            let path = Filename.concat dir name in
            match Report.load path with
            | Error e ->
                Format.eprintf "iron golden: %s@." e;
                exit 2
            | Ok golden -> (
                match Report.diff golden art with
                | Error e ->
                    Format.eprintf "iron golden: %s: %s@." name e;
                    exit 2
                | Ok [] ->
                    Format.printf "ok   %s@." name;
                    acc
                | Ok items ->
                    Format.printf "DIFF %s (%d cell%s)@.%a" name
                      (List.length items)
                      (if List.length items = 1 then "" else "s")
                      Report.pp_items items;
                    acc + List.length items))
          0 fresh
      in
      if total > 0 then begin
        Format.printf
          "@.%d differing cell%s — run 'iron golden --update' only if the \
           change is intended@."
          total
          (if total = 1 then "" else "s");
        exit 1
      end
    end
  in
  Cmd.v
    (Cmd.info "golden"
       ~doc:"Regenerate (--update) or check the committed golden artifacts: \
             fingerprint matrices for ext3/reiserfs/jfs/ixt3 and the \
             ext3-vs-ixt3 crash-exploration asymmetry. The check is the \
             same comparison CI's golden gate runs via $(b,iron diff).")
    Term.(const run $ update_arg $ dir_arg $ jobs_arg $ seed_arg $ states_arg)

let fsck_cmd =
  let run () =
    (* Build a volume, damage its bitmap, then check and repair. *)
    let module Memdisk = Iron_disk.Memdisk in
    let module Fs = Iron_vfs.Fs in
    let disk = Memdisk.create () in
    Memdisk.set_time_model disk false;
    let dev = Memdisk.dev disk in
    (match Fs.mkfs Iron_ext3.Ext3.std dev with Ok () -> () | Error _ -> failwith "mkfs");
    (match Fs.mount Iron_ext3.Ext3.std dev with
    | Ok (Fs.Boxed ((module F), t) as boxed) ->
        (match Iron_core.Workload.fixture boxed with
        | Ok () -> ()
        | Error _ -> failwith "fixture");
        ignore (F.unmount t)
    | Error _ -> failwith "mount");
    let lay = Iron_ext3.Ext3.layout_of_dev dev in
    let bb = Iron_ext3.Layout.bitmap_block lay 0 in
    let buf = Memdisk.peek disk bb in
    Bytes.set buf 20 '\xFF';
    Memdisk.poke disk bb buf;
    Printf.printf "scribbled on the group-0 block bitmap; running fsck --repair:\n";
    (match Iron_ext3.Fsck.run ~repair:true dev with
    | Ok r -> Format.printf "%a@." Iron_ext3.Fsck.pp_report r
    | Error e -> Format.printf "fsck failed: %a@." Iron_vfs.Errno.pp e);
    match Iron_ext3.Fsck.run dev with
    | Ok r -> Format.printf "re-check: %a@." Iron_ext3.Fsck.pp_report r
    | Error e -> Format.printf "fsck failed: %a@." Iron_vfs.Errno.pp e
  in
  Cmd.v
    (Cmd.info "fsck"
       ~doc:"Demonstrate RRepair: cross-check a volume's structures and repair inconsistencies.")
    Term.(const run $ const ())

let () =
  let doc = "IRON file systems: fault injection, fingerprinting and the ixt3 prototype" in
  let info = Cmd.info "iron" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ fingerprint_cmd; summary_cmd; bench_cmd; space_cmd; robust_cmd;
            stats_cmd; scrub_cmd; crash_cmd; fuzz_cmd; traffic_cmd; explain_cmd; fsck_cmd;
            diff_cmd; golden_cmd ]))
