(* The iron command-line tool: run the paper's experiments from a shell.

     iron fingerprint [FS]...      failure-policy matrices (Figure 2/3)
     iron summary                  Table 5 technique summary
     iron bench                    Table 6 overheads
     iron space                    space overheads
     iron scrub                    the scrubbing demo
     iron robust                   detected-and-recovered counts
     iron stats                    observed campaign metrics table
     iron crash [FS]...            crash-state exploration (power cuts)

   fingerprint, robust and bench also take --trace FILE / --metrics FILE
   to export Chrome-trace / JSONL views of the run ('-' = stdout). *)

open Cmdliner

let brands =
  [
    ("ext3", Iron_ext3.Ext3.std);
    ("reiserfs", Iron_reiserfs.Reiserfs.brand);
    ("jfs", Iron_jfs.Jfs.brand);
    ("ntfs", Iron_ntfs.Ntfs.brand);
    ("ixt3", Iron_ext3.Ext3.ixt3);
  ]

let brand_conv =
  let parse s =
    match List.assoc_opt s brands with
    | Some b -> Ok b
    | None ->
        Error (`Msg (Printf.sprintf "unknown file system %S (try: %s)" s
                       (String.concat ", " (List.map fst brands))))
  in
  Arg.conv (parse, fun fmt b -> Format.pp_print_string fmt (Iron_vfs.Fs.brand_name b))

let fs_args =
  Arg.(value & pos_all brand_conv [ Iron_ext3.Ext3.std ]
       & info [] ~docv:"FS" ~doc:"File systems to fingerprint.")

(* -j N: worker domains for the campaign executor. The default is what
   the runtime recommends for this machine. *)
let jobs_arg =
  Arg.(value
       & opt int (Iron_util.Pool.default_jobs ())
       & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Number of worker domains for independent experiments \
                 (default: the runtime's recommended domain count). The \
                 output is byte-identical for any value.")

let seed_arg =
  Arg.(value
       & opt int Iron_core.Experiment.default_seed
       & info [ "seed" ] ~docv:"SEED"
           ~doc:"Campaign seed threaded through the experiment spec; two \
                 runs with the same seed are identical by construction.")

let verbose_arg =
  Arg.(value & flag
       & info [ "v"; "verbose" ]
           ~doc:"Print per-campaign counters (jobs done/total, faults \
                 fired, wall-clock) from the aggregator.")

(* --trace/--metrics: export the observability layer's outputs. "-"
   means stdout. Either flag switches the campaign to ~observe:true. *)
let trace_arg =
  Arg.(value
       & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Write a Chrome trace_event file (open in chrome://tracing \
                 or Perfetto) of the campaign's spans to $(docv) ('-' for \
                 stdout). The span set is byte-identical for any -j.")

let metrics_arg =
  Arg.(value
       & opt (some string) None
       & info [ "metrics" ] ~docv:"FILE"
           ~doc:"Write the merged metrics registry as JSONL to $(docv) \
                 ('-' for stdout). Byte-identical for any -j.")

let write_output path contents =
  match path with
  | "-" -> print_string contents
  | file ->
      let oc = open_out file in
      output_string oc contents;
      close_out oc

let export_observed ~trace ~metrics observed =
  (match trace with
  | None -> ()
  | Some path ->
      let procs =
        List.map
          (fun (name, (o : Iron_core.Driver.observed)) -> (name, o.Iron_core.Driver.spans))
          observed
      in
      write_output path (Iron_obs.Obs.chrome_trace procs));
  match metrics with
  | None -> ()
  | Some path ->
      let snap =
        Iron_obs.Obs.merge
          (List.map
             (fun (_, (o : Iron_core.Driver.observed)) -> o.Iron_core.Driver.metrics)
             observed)
      in
      write_output path (Iron_obs.Obs.jsonl_of_snapshot snap)

let pp_campaign_stats verbose report =
  if verbose then
    Format.eprintf "%s %a@." report.Iron_core.Driver.name
      Iron_core.Driver.pp_stats report.Iron_core.Driver.stats

let fingerprint_cmd =
  let run fses jobs seed verbose trace metrics =
    let observe = trace <> None || metrics <> None in
    let observed =
      List.filter_map
        (fun brand ->
          let report = Iron_core.Driver.fingerprint ~jobs ~seed ~observe brand in
          Format.printf "%a@." Iron_core.Render.pp_report report;
          Format.printf "fired=%d detected+recovered=%d@.@."
            (Iron_core.Driver.experiments_run report)
            (Iron_core.Driver.detected_and_recovered report);
          pp_campaign_stats verbose report;
          Option.map
            (fun o -> (report.Iron_core.Driver.name, o))
            report.Iron_core.Driver.observed)
        fses
    in
    export_observed ~trace ~metrics observed
  in
  Cmd.v
    (Cmd.info "fingerprint"
       ~doc:"Inject type-aware faults beneath a file system and print its failure-policy matrices (the paper's Figures 2 and 3).")
    Term.(const run $ fs_args $ jobs_arg $ seed_arg $ verbose_arg $ trace_arg
          $ metrics_arg)

let summary_cmd =
  let run jobs seed verbose =
    let reports =
      List.map
        (fun (_, b) ->
          let r = Iron_core.Driver.fingerprint ~jobs ~seed b in
          pp_campaign_stats verbose r;
          r)
        (List.filter (fun (n, _) -> n <> "ntfs" && n <> "ixt3") brands)
    in
    Format.printf "%a@." Iron_core.Render.pp_summary (Iron_core.Render.summarize reports)
  in
  Cmd.v
    (Cmd.info "summary" ~doc:"Table 5: which IRON techniques each file system uses.")
    Term.(const run $ jobs_arg $ seed_arg $ verbose_arg)

let bench_cmd =
  let run jobs trace metrics =
    let observe = trace <> None || metrics <> None in
    if not observe then
      Format.printf "%a@." Iron_workloads.Table6.pp
        (Iron_workloads.Table6.compute ~jobs ())
    else begin
      let obs = Iron_obs.Obs.create () in
      let table = Iron_workloads.Table6.compute ~obs ~jobs () in
      Format.printf "%a@." Iron_workloads.Table6.pp table;
      (match trace with
      | None -> ()
      | Some path ->
          (* Span order is only meaningful at -j 1; see Table6.compute. *)
          write_output path
            (Iron_obs.Obs.chrome_trace [ ("bench", Iron_obs.Obs.spans obs) ]));
      match metrics with
      | None -> ()
      | Some path ->
          write_output path
            (Iron_obs.Obs.jsonl_of_snapshot (Iron_obs.Obs.snapshot obs))
    end
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:"Table 6: time overheads of the 32 ixt3 feature combinations under SSH-Build, Web, PostMark and TPC-B.")
    Term.(const run $ jobs_arg $ trace_arg $ metrics_arg)

let space_cmd =
  let run () =
    Format.printf "%a@." Iron_workloads.Space.pp (Iron_workloads.Space.measure ())
  in
  Cmd.v
    (Cmd.info "space" ~doc:"Space overheads of checksums, replication and parity.")
    Term.(const run $ const ())

let robust_cmd =
  let run jobs seed verbose trace metrics =
    let observe = trace <> None || metrics <> None in
    let observed =
      List.filter_map
        (fun (name, brand) ->
          let r = Iron_core.Driver.fingerprint ~jobs ~seed ~observe brand in
          Format.printf "%-10s fired=%d detected+recovered=%d@." name
            (Iron_core.Driver.experiments_run r)
            (Iron_core.Driver.detected_and_recovered r);
          pp_campaign_stats verbose r;
          Option.map (fun o -> (name, o)) r.Iron_core.Driver.observed)
        brands
    in
    export_observed ~trace ~metrics observed
  in
  Cmd.v
    (Cmd.info "robust"
       ~doc:"Count fault scenarios each file system detects and recovers from.")
    Term.(const run $ jobs_arg $ seed_arg $ verbose_arg $ trace_arg
          $ metrics_arg)

let stats_cmd =
  let run fses jobs seed verbose =
    List.iter
      (fun brand ->
        let report = Iron_core.Driver.fingerprint ~jobs ~seed ~observe:true brand in
        (match report.Iron_core.Driver.observed with
        | Some o ->
            Format.printf "== %s ==@.%a@." report.Iron_core.Driver.name
              Iron_obs.Obs.pp_snapshot o.Iron_core.Driver.metrics
        | None -> ());
        pp_campaign_stats verbose report)
      fses
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Run an observed fingerprinting campaign and print the merged \
             metrics registry (disk I/O, injected faults, journal commits, \
             scrub passes) as a per-subsystem table. Deterministic: \
             byte-identical for any -j with the same --seed.")
    Term.(const run $ fs_args $ jobs_arg $ seed_arg $ verbose_arg)

let scrub_cmd =
  let run () =
    (* Build a damaged ixt3 volume and scrub it. *)
    let module Memdisk = Iron_disk.Memdisk in
    let module Fault = Iron_fault.Fault in
    let module Fs = Iron_vfs.Fs in
    let disk = Memdisk.create () in
    Memdisk.set_time_model disk false;
    let inj = Fault.create (Memdisk.dev disk) in
    let dev = Fault.dev inj in
    let brand = Iron_ixt3.Ixt3.full in
    (match Fs.mkfs brand dev with Ok () -> () | Error _ -> failwith "mkfs");
    (match Fs.mount brand dev with
    | Ok (Fs.Boxed ((module F), t) as boxed) ->
        (match Iron_core.Workload.fixture boxed with
        | Ok () -> ()
        | Error _ -> failwith "fixture");
        ignore (F.unmount t)
    | Error _ -> failwith "mount");
    let classify = Iron_ext3.Classifier.classify (Memdisk.peek disk) in
    let first_with label =
      let rec go b =
        if b >= 2048 then None
        else if classify b = label then Some b
        else go (b + 1)
      in
      go 0
    in
    List.iter
      (fun label ->
        match first_with label with
        | Some b ->
            ignore
              (Fault.arm inj
                 (Fault.rule ~persistence:Fault.Until_write (Fault.Block b)
                    Fault.Fail_read));
            Printf.printf "injected latent error under %s block %d\n" label b
        | None -> ())
      [ "inode"; "dir"; "data" ];
    match Iron_ixt3.Scrub.run Iron_ext3.Profile.ixt3 dev with
    | Ok r -> Format.printf "%a@." Iron_ixt3.Scrub.pp_report r
    | Error e -> Format.printf "scrub failed: %a@." Iron_vfs.Errno.pp e
  in
  Cmd.v
    (Cmd.info "scrub"
       ~doc:"Demonstrate eager detection: damage an ixt3 volume, then scrub and repair it.")
    Term.(const run $ const ())

let crash_cmd =
  let states_arg =
    Arg.(value & opt int 1000
         & info [ "states" ] ~docv:"N"
             ~doc:"Upper bound on distinct crash states per file system \
                   (systematic states first, seeded random per-block \
                   prefixes top up to the bound).")
  in
  let check_arg =
    Arg.(value & opt_all string []
         & info [ "check" ] ~docv:"FS"
             ~doc:"Exit non-zero if $(docv) reports any invariant \
                   violation. Repeatable; used by CI to pin the \
                   transactional-checksum guarantee.")
  in
  let run fses jobs seed states check trace metrics =
    let observe = trace <> None || metrics <> None in
    let observed = ref [] in
    let failed = ref [] in
    List.iter
      (fun brand ->
        let obs = if observe then Some (Iron_obs.Obs.create ()) else None in
        let r = Iron_crash.Explore.explore ~jobs ~seed ~max_states:states ?obs brand in
        Format.printf "%a@.@." Iron_crash.Explore.pp_report r;
        (match obs with
        | Some o -> observed := (r.Iron_crash.Explore.fs, o) :: !observed
        | None -> ());
        if
          List.mem r.Iron_crash.Explore.fs check
          && r.Iron_crash.Explore.violations <> []
        then failed := r.Iron_crash.Explore.fs :: !failed)
      fses;
    let observed = List.rev !observed in
    (match trace with
    | None -> ()
    | Some path ->
        write_output path
          (Iron_obs.Obs.chrome_trace
             (List.map (fun (n, o) -> (n, Iron_obs.Obs.spans o)) observed)));
    (match metrics with
    | None -> ()
    | Some path ->
        write_output path
          (Iron_obs.Obs.jsonl_of_snapshot
             (Iron_obs.Obs.merge
                (List.map (fun (_, o) -> Iron_obs.Obs.snapshot o) observed))));
    match !failed with
    | [] -> ()
    | fs ->
        Format.eprintf "crash check failed: violations on %s@."
          (String.concat ", " (List.rev fs));
        exit 1
  in
  Cmd.v
    (Cmd.info "crash"
       ~doc:"Enumerate the disk states a power cut could leave behind \
             (any subset of each sync-delimited reorder window, torn \
             writes, a write-back cache that lies about sync) and check \
             each one: the volume mounts, recovery does not panic, every \
             fsync'd file is intact, and fsck is clean. ext3 without \
             transactional checksums replays reordered commits as \
             garbage; ixt3 detects the mismatch and refuses.")
    Term.(const run $ fs_args $ jobs_arg $ seed_arg $ states_arg $ check_arg
          $ trace_arg $ metrics_arg)

let fsck_cmd =
  let run () =
    (* Build a volume, damage its bitmap, then check and repair. *)
    let module Memdisk = Iron_disk.Memdisk in
    let module Fs = Iron_vfs.Fs in
    let disk = Memdisk.create () in
    Memdisk.set_time_model disk false;
    let dev = Memdisk.dev disk in
    (match Fs.mkfs Iron_ext3.Ext3.std dev with Ok () -> () | Error _ -> failwith "mkfs");
    (match Fs.mount Iron_ext3.Ext3.std dev with
    | Ok (Fs.Boxed ((module F), t) as boxed) ->
        (match Iron_core.Workload.fixture boxed with
        | Ok () -> ()
        | Error _ -> failwith "fixture");
        ignore (F.unmount t)
    | Error _ -> failwith "mount");
    let lay = Iron_ext3.Ext3.layout_of_dev dev in
    let bb = Iron_ext3.Layout.bitmap_block lay 0 in
    let buf = Memdisk.peek disk bb in
    Bytes.set buf 20 '\xFF';
    Memdisk.poke disk bb buf;
    Printf.printf "scribbled on the group-0 block bitmap; running fsck --repair:\n";
    (match Iron_ext3.Fsck.run ~repair:true dev with
    | Ok r -> Format.printf "%a@." Iron_ext3.Fsck.pp_report r
    | Error e -> Format.printf "fsck failed: %a@." Iron_vfs.Errno.pp e);
    match Iron_ext3.Fsck.run dev with
    | Ok r -> Format.printf "re-check: %a@." Iron_ext3.Fsck.pp_report r
    | Error e -> Format.printf "fsck failed: %a@." Iron_vfs.Errno.pp e
  in
  Cmd.v
    (Cmd.info "fsck"
       ~doc:"Demonstrate RRepair: cross-check a volume's structures and repair inconsistencies.")
    Term.(const run $ const ())

let () =
  let doc = "IRON file systems: fault injection, fingerprinting and the ixt3 prototype" in
  let info = Cmd.info "iron" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ fingerprint_cmd; summary_cmd; bench_cmd; space_cmd; robust_cmd;
            stats_cmd; scrub_cmd; crash_cmd; fsck_cmd ]))
